(* xkq: command-line XML keyword search.

     xkq generate --dataset dblp --scale 0.5 --out corpus.xml
     xkq index corpus.xml --out corpus.idx
     xkq search corpus.xml xml keyword --semantics elca --algo join
     xkq search corpus.xml xml keyword --index corpus.idx --top 10
     xkq batch corpus.xml queries.txt --domains 4 --top 10 --check
     xkq stats corpus.xml
     xkq terms corpus.xml --near 100                                  *)

open Cmdliner

(* Index the document, or re-attach a saved index to skip tokenization. *)
let load_engine ?index_file path =
  let t0 = Unix.gettimeofday () in
  let eng =
    match index_file with
    | None -> Xk_core.Engine.of_file path
    | Some idx_path ->
        let doc = Xk_xml.Xml_parser.parse_file_exn path in
        let label = Xk_encoding.Labeling.label doc in
        Xk_core.Engine.of_index (Xk_index.Index_io.load label idx_path)
  in
  Printf.eprintf "%s %s in %.2fs\n%!"
    (match index_file with None -> "indexed" | Some _ -> "loaded")
    path
    (Unix.gettimeofday () -. t0);
  eng

(* Same entry point for sharded serving: partition in memory, or reload a
   shard manifest written by `xkq index --shards`. *)
let load_sharded ?index_file ~shards path =
  let t0 = Unix.gettimeofday () in
  let doc = Xk_xml.Xml_parser.parse_file_exn path in
  let sharded =
    match index_file with
    | Some p when Xk_index.Shard_io.is_manifest p -> (
        match Xk_index.Shard_io.load_result doc p with
        | Ok s -> s
        | Error e -> failwith (Xk_index.Shard_io.error_message e))
    | Some p ->
        failwith
          (Printf.sprintf
             "%s is not a shard manifest (build one with `xkq index --shards`)"
             p)
    | None -> Xk_index.Sharding.partition ~shards doc
  in
  Printf.eprintf "%s %s as %d shard(s) in %.2fs\n%!"
    (match index_file with None -> "indexed" | Some _ -> "loaded")
    path
    (Xk_index.Sharding.count sharded)
    (Unix.gettimeofday () -. t0);
  sharded

(* The endpoint grid for --remote: every replica of the manifest must
   carry a recorded (host, port). *)
let remote_endpoints ~index_file =
  match index_file with
  | None -> failwith "--remote needs --index MANIFEST (with recorded endpoints)"
  | Some p -> (
      match Xk_index.Shard_io.endpoints p with
      | Error e -> failwith (Xk_index.Shard_io.error_message e)
      | Ok eps ->
          Array.map
            (Array.map (function
              | Some hp -> hp
              | None ->
                  failwith
                    "--remote: the manifest has replicas without endpoints \
                     (rebuild with `xkq index --shards --rpc-base-port`)"))
            eps)

(* ------------------------------------------------------------------ *)

let generate dataset scale out =
  let doc =
    match dataset with
    | "dblp" -> (Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale)).doc
    | "xmark" -> (Xk_datagen.Xmark_gen.generate (Xk_datagen.Xmark_gen.scaled scale)).doc
    | other -> failwith (Printf.sprintf "unknown dataset %S (dblp|xmark)" other)
  in
  Xk_xml.Xml_print.to_file out doc;
  Printf.printf "wrote %s (%d nodes)\n" out (Xk_xml.Xml_tree.node_count doc)

let generate_cmd =
  let dataset =
    Arg.(value & opt string "dblp" & info [ "dataset" ] ~doc:"dblp or xmark.")
  in
  let scale = Arg.(value & opt float 0.2 & info [ "scale" ] ~doc:"Size factor.") in
  let out =
    Arg.(value & opt string "corpus.xml" & info [ "out" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic corpus.")
    Term.(const generate $ dataset $ scale $ out)

(* ------------------------------------------------------------------ *)

let index_doc path out shards replicas rpc_host rpc_base_port =
  let out_dir = Filename.dirname out in
  if not (Sys.file_exists out_dir && Sys.is_directory out_dir) then
    Error
      (Printf.sprintf "index: output directory %s does not exist" out_dir)
  else if shards <= 1 then begin
    if rpc_base_port <> None then
      Error "--rpc-base-port needs --shards (endpoints live in the manifest)"
    else begin
      let eng = load_engine path in
      Xk_index.Index_io.save (Xk_core.Engine.index eng) out;
      Printf.printf "wrote %s (%.2f MB)\n" out
        (float_of_int (Xk_index.Index_io.file_size out) /. 1048576.);
      Ok ()
    end
  end
  else begin
    let sharded = load_sharded ~shards path in
    (* Endpoint layout mirrors the fleet bring-up loop: shard s replica
       r serves on base + s*replicas + r. *)
    let endpoints =
      Option.map
        (fun base ->
          Array.init (Xk_index.Sharding.count sharded) (fun s ->
              Array.init replicas (fun r ->
                  (rpc_host, base + (s * replicas) + r))))
        rpc_base_port
    in
    Xk_index.Shard_io.save ~replicas ?endpoints sharded out;
    let mb b = float_of_int b /. 1048576. in
    let total = ref (Xk_index.Index_io.file_size out) in
    Printf.printf "wrote %s (manifest, %d shards x %d replica(s))\n" out
      (Xk_index.Sharding.count sharded)
      replicas;
    Array.iteri
      (fun s (r : Xk_index.Index_sizes.report) ->
        let seg = Xk_index.Shard_io.segment_path out ~shard:s in
        let bytes = Xk_index.Index_io.file_size seg in
        for rep = 0 to replicas - 1 do
          total :=
            !total
            + Xk_index.Index_io.file_size
                (Xk_index.Shard_io.replica_path out ~shard:s ~replica:rep)
        done;
        let idx = Xk_index.Sharding.index sharded s in
        Printf.printf
          "  shard %3d: %-24s %7.2f MB, %8d nodes, %7d terms, IL %.2f MB\n" s
          (Filename.basename seg) (mb bytes)
          (Xk_encoding.Labeling.node_count (Xk_index.Index.label idx))
          (Xk_index.Index.term_count idx)
          (mb r.join_based.inverted_lists))
      (Xk_index.Sharding.size_reports sharded);
    Printf.printf "total on disk: %.2f MB (manifest + %d segment file(s))\n"
      (mb !total)
      (Xk_index.Sharding.count sharded * replicas);
    Ok ()
  end

let index_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt string "corpus.idx" & info [ "out" ] ~doc:"Index file.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Partition the index into N shards and save a shard manifest \
             plus one segment per shard, with a per-shard size breakdown.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "With $(b,--shards), write N independently verified segment \
             copies per shard; loaders fall back across copies on \
             corruption or IO failure.")
  in
  let rpc_host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "rpc-host" ]
          ~doc:"With $(b,--rpc-base-port), the host recorded per endpoint.")
  in
  let rpc_base_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "rpc-base-port" ]
          ~doc:
            "Record a serving endpoint per replica in the manifest: shard S \
             replica R gets port BASE + S*replicas + R on $(b,--rpc-host).  \
             `xkq batch --remote` dials these; `xkq serve-shard` binds \
             them.")
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build and save an index for an XML file.")
    Term.(
      term_result'
        (const index_doc $ path $ out $ shards $ replicas $ rpc_host
        $ rpc_base_port))

(* ------------------------------------------------------------------ *)

(* Live mutation: `xkq mutate` and `xkq compact` drive an on-disk
   {!Xk_index.Live} store.  Exit classes extend the batch convention:
   0 ok, 1 hard failure, 2 parity-check failure, 3 a --chaos crash
   drill fired at a durability step — the code the CI crash matrix
   asserts on before reopening the directory to prove recovery. *)

let live_fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("xkq: " ^ m);
      exit 1)
    fmt

(* Only crash@ drills make sense against a store directory (kill/slow/
   corrupt address the serving layer); validate step names against the
   store's published crash surface before arming anything. *)
let install_mutation_chaos spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.iter (fun item ->
         match String.index_opt item '@' with
         | Some i when String.sub item 0 i = "crash" ->
             let step = String.sub item (i + 1) (String.length item - i - 1) in
             if not (List.mem step Xk_index.Live.crash_steps) then
               live_fail "--chaos: unknown crash step %S (steps: %s)" step
                 (String.concat ", " Xk_index.Live.crash_steps)
         | _ ->
             live_fail
               "--chaos: %S is not a crash drill (mutation takes \
                crash@<step>; kill/slow/corrupt address `xkq batch`)"
               item);
  match Xk_resilience.Chaos.of_spec spec with
  | Error msg -> live_fail "--chaos: %s" msg
  | Ok schedule -> Xk_resilience.Chaos.install schedule

(* A mutation operand is an XML file if one exists at that path,
   otherwise inline XML.  Either way the document root becomes the
   inserted subtree. *)
let live_subtree src =
  let parsed =
    if Sys.file_exists src then
      Xk_xml.Xml_parser.parse_file ~keep_ws:true src
    else Xk_xml.Xml_parser.parse_string ~keep_ws:true src
  in
  match parsed with
  | Ok (doc : Xk_xml.Xml_tree.document) -> Xk_xml.Xml_tree.Element doc.root
  | Error e ->
      live_fail "cannot parse %S: %s" src
        (Format.asprintf "%a" Xk_xml.Xml_parser.pp_error e)

let live_open ~init ~fsync ~auto_compact dir =
  let opened =
    match init with
    | Some root_tag ->
        Xk_index.Live.create ~fsync ?auto_compact ~root_tag dir
    | None -> Xk_index.Live.open_ ~fsync ?auto_compact dir
  in
  match opened with
  | Ok t -> t
  | Error e -> live_fail "%s: %s" dir (Xk_index.Live.error_message e)

(* Post-mutation parity: every --check query answered through the
   snapshot's shards must score identically to a from-scratch engine
   over the snapshot's own document. *)
let live_check snap queries =
  let engine = Xk_core.Engine.create (Xk_index.Snapshot.document snap) in
  let sx =
    Xk_exec.Shard_exec.create ~domains:2 (Xk_index.Snapshot.sharding snap)
  in
  Fun.protect
    ~finally:(fun () -> Xk_exec.Shard_exec.shutdown sx)
    (fun () ->
      List.for_all
        (fun words ->
          let expected = Xk_core.Engine.query_topk engine words ~k:10 in
          let scores hs =
            List.map (fun (h : Xk_baselines.Hit.t) -> h.score) hs
          in
          match
            Xk_exec.Shard_exec.exec sx (Xk_core.Engine.topk_request ~k:10 words)
          with
          | Xk_exec.Query_service.Ok hits when scores hits = scores expected ->
              Printf.printf "check: {%s} matches a from-scratch engine (%d hit(s))\n"
                (String.concat " " words) (List.length hits);
              true
          | Xk_exec.Query_service.Ok _ ->
              Printf.eprintf
                "check FAILED: {%s} sharded scores differ from engine\n%!"
                (String.concat " " words);
              false
          | _ ->
              Printf.eprintf "check FAILED: {%s} did not complete\n%!"
                (String.concat " " words);
              false)
        queries)

let live_queries checks =
  List.map
    (fun q ->
      match
        String.split_on_char ' ' q |> List.filter (fun w -> w <> "")
      with
      | [] -> live_fail "--check: empty query"
      | words -> words)
    checks

let live_status t =
  Printf.printf "store %s: %d document(s), lsn %d, %d pending op(s), gens [%s]\n"
    (Xk_index.Live.dir t)
    (Xk_index.Live.doc_count t)
    (Xk_index.Live.lsn t)
    (Xk_index.Live.pending_ops t)
    (String.concat "; " (List.map string_of_int (Xk_index.Live.sealed_gens t)))

let mutate dir init adds replaces removes do_compact auto_compact no_fsync
    chaos checks =
  Option.iter install_mutation_chaos chaos;
  let t = live_open ~init ~fsync:(not no_fsync) ~auto_compact dir in
  let ops =
    List.map (fun src -> Xk_index.Live.Add (live_subtree src)) adds
    @ List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i -> (
              let id = String.sub spec 0 i in
              let src =
                String.sub spec (i + 1) (String.length spec - i - 1)
              in
              match int_of_string_opt id with
              | Some id -> Xk_index.Live.Replace (id, live_subtree src)
              | None -> live_fail "--replace: %S is not a document id" id)
          | None -> live_fail "--replace wants ID=FILE-OR-XML, got %S" spec)
        replaces
    @ List.map (fun id -> Xk_index.Live.Remove id) removes
  in
  (try
     (if ops <> [] then
        match Xk_index.Live.mutate t ops with
        | Ok ids ->
            Printf.printf "applied %d operation(s), ids [%s]\n"
              (List.length ops)
              (String.concat "; " (List.map string_of_int ids))
        | Error e -> live_fail "mutate: %s" (Xk_index.Live.error_message e));
     if do_compact then
       match Xk_index.Live.compact t with
       | Ok () -> ()
       | Error e -> live_fail "compact: %s" (Xk_index.Live.error_message e)
   with Xk_resilience.Chaos.Crashed step ->
     (* The drill's contract: die without cleanup, like a power cut. *)
     Printf.eprintf "crash drill fired at durability step %s\n%!" step;
     exit 3);
  live_status t;
  let ok =
    match checks with
    | [] -> true
    | qs -> live_check (Xk_index.Live.snapshot t) (live_queries qs)
  in
  Xk_index.Live.close t;
  if not ok then exit 2

let compact_store dir no_fsync chaos checks =
  Option.iter install_mutation_chaos chaos;
  let t = live_open ~init:None ~fsync:(not no_fsync) ~auto_compact:None dir in
  (try
     match Xk_index.Live.compact t with
     | Ok () -> ()
     | Error e -> live_fail "compact: %s" (Xk_index.Live.error_message e)
   with Xk_resilience.Chaos.Crashed step ->
     Printf.eprintf "crash drill fired at durability step %s\n%!" step;
     exit 3);
  live_status t;
  let ok =
    match checks with
    | [] -> true
    | qs -> live_check (Xk_index.Live.snapshot t) (live_queries qs)
  in
  Xk_index.Live.close t;
  if not ok then exit 2

let live_dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

let live_no_fsync =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:"Skip fsync on every durability step (tests only; forfeits \
              crash safety).")

let live_chaos =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Crash drill: $(b,crash@STEP) kills the process (exit 3) the \
              first time the named durability step runs.  Steps: %s."
             (String.concat ", " Xk_index.Live.crash_steps)))

let live_checks =
  Arg.(
    value & opt_all string []
    & info [ "check" ] ~docv:"QUERY"
        ~doc:
          "After the batch, run this space-separated keyword query through \
           the snapshot's shards and require scores identical to a \
           from-scratch engine (exit 2 on mismatch).  Repeatable.")

let mutate_cmd =
  let init =
    Arg.(
      value
      & opt (some string) None
      & info [ "init" ] ~docv:"ROOT_TAG"
          ~doc:
            "Initialize a fresh store in DIR with this root element tag \
             (refused if DIR already holds a manifest).")
  in
  let adds =
    Arg.(
      value & opt_all string []
      & info [ "add" ] ~docv:"SRC"
          ~doc:
            "Insert a document: an XML file path, or inline XML if no such \
             file exists.  Repeatable; ids are assigned in order.")
  in
  let replaces =
    Arg.(
      value & opt_all string []
      & info [ "replace" ] ~docv:"ID=SRC"
          ~doc:"Replace the document with that id.  Repeatable.")
  in
  let removes =
    Arg.(
      value & opt_all int []
      & info [ "remove" ] ~docv:"ID"
          ~doc:"Remove the document with that id.  Repeatable.")
  in
  let do_compact =
    Arg.(
      value & flag
      & info [ "compact" ] ~doc:"Compact after applying the batch.")
  in
  let auto_compact =
    Arg.(
      value
      & opt (some int) None
      & info [ "auto-compact" ] ~docv:"N"
          ~doc:"Compact automatically once the delta touches N documents.")
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Apply a batch of insert/replace/remove operations to a live store \
          (WAL-first, crash-safe).  Adds apply before replaces, replaces \
          before removes.")
    Term.(
      const mutate $ live_dir_arg $ init $ adds $ replaces $ removes
      $ do_compact $ auto_compact $ live_no_fsync $ live_chaos $ live_checks)

let compact_cmd =
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Fold a live store's delta and dirty generations into a sealed \
          segment and reset its WAL.")
    Term.(
      const compact_store $ live_dir_arg $ live_no_fsync $ live_chaos
      $ live_checks)

(* ------------------------------------------------------------------ *)

let semantics_conv =
  Arg.enum [ ("elca", Xk_core.Engine.Elca); ("slca", Xk_core.Engine.Slca) ]

let algo_conv =
  Arg.enum
    [
      ("join", Xk_core.Engine.Join_based);
      ("stack", Xk_core.Engine.Stack_based);
      ("indexed", Xk_core.Engine.Index_based);
      ("oracle", Xk_core.Engine.Oracle);
    ]

let topk_algo_conv =
  Arg.enum
    [
      ("topk-join", Xk_core.Engine.Topk_join);
      ("complete", Xk_core.Engine.Complete_then_sort);
      ("rdil", Xk_core.Engine.Rdil_baseline);
      ("hybrid", Xk_core.Engine.Hybrid);
    ]

let print_hits_with ~pp ~snip words explain hits limit =
  List.iteri
    (fun i (h : Xk_baselines.Hit.t) ->
      if i < limit then begin
        Fmt.pr "%2d. %a@." (i + 1) pp h;
        if explain then
          List.iter
            (fun (kw, text) -> Fmt.pr "      [%s] ...%s...@." kw text)
            (snip words h)
      end)
    hits;
  let n = List.length hits in
  if n > limit then Fmt.pr "... and %d more results@." (n - limit)

let print_hits eng =
  print_hits_with ~pp:(Xk_core.Engine.pp_hit eng)
    ~snip:(fun words h -> Xk_core.Engine.snippet eng words h)

let request_of words semantics algo top topk_algo =
  match top with
  | Some k -> Xk_core.Engine.topk_request ~semantics ~algorithm:topk_algo ~k words
  | None -> Xk_core.Engine.complete_request ~semantics ~algorithm:algo words

let search path words semantics algo top topk_algo limit index_file explain
    shards replicas remote =
  if words = [] then failwith "no query keywords given";
  if remote && shards = None then
    failwith "--remote serves shards; add --shards N and --index MANIFEST";
  match shards with
  | None ->
      let eng = load_engine ?index_file path in
      let t0 = Unix.gettimeofday () in
      let hits =
        match top with
        | Some k ->
            Xk_core.Engine.query_topk ~semantics ~algorithm:topk_algo eng words
              ~k
        | None -> Xk_core.Engine.query ~semantics ~algorithm:algo eng words
      in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      Fmt.pr "%d result(s) in %.2f ms for {%s}@." (List.length hits) dt
        (String.concat " " words);
      print_hits eng words explain hits limit
  | Some n ->
      let sharded = load_sharded ?index_file ~shards:n path in
      let endpoints =
        if remote then Some (remote_endpoints ~index_file) else None
      in
      let sx = Xk_exec.Shard_exec.create ~replicas ?endpoints sharded in
      let req = request_of words semantics algo top topk_algo in
      let t0 = Unix.gettimeofday () in
      let outcome = Xk_exec.Shard_exec.exec sx req in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      let show label hits =
        Fmt.pr "%s%d result(s) in %.2f ms for {%s} over %d shard(s)@." label
          (List.length hits) dt
          (String.concat " " words)
          (Xk_exec.Shard_exec.shard_count sx);
        print_hits_with
          ~pp:(Xk_exec.Shard_exec.pp_hit sx)
          ~snip:(fun words h -> Xk_exec.Shard_exec.snippet sx words h)
          words explain hits limit
      in
      (match outcome with
      | Xk_exec.Query_service.Ok hits -> show "" hits
      | Xk_exec.Query_service.Partial hits -> show "partial: " hits
      | Xk_exec.Query_service.Degraded d ->
          show
            (Printf.sprintf "degraded (%.0f%% coverage, missing shard(s) %s): "
               (100. *. d.coverage)
               (String.concat "," (List.map string_of_int d.missing_shards)))
            d.hits
      | Xk_exec.Query_service.Timeout -> Fmt.pr "timed out with no result@."
      | Xk_exec.Query_service.Rejected -> Fmt.pr "rejected by admission control@."
      | Xk_exec.Query_service.Failed f -> Fmt.pr "failed: %s@." f.message);
      Xk_exec.Shard_exec.shutdown sx

let search_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let words = Arg.(value & pos_right 0 string [] & info [] ~docv:"KEYWORD") in
  let semantics =
    Arg.(
      value
      & opt semantics_conv Xk_core.Engine.Elca
      & info [ "semantics" ] ~doc:"elca or slca.")
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Xk_core.Engine.Join_based
      & info [ "algo" ] ~doc:"join, stack, indexed or oracle.")
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ] ~doc:"Top-K mode with K results.")
  in
  let topk_algo =
    Arg.(
      value
      & opt topk_algo_conv Xk_core.Engine.Topk_join
      & info [ "topk-algo" ] ~doc:"topk-join, complete, rdil or hybrid.")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Results to display.")
  in
  let index_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~doc:"Saved index file (from `xkq index`).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Show per-keyword witness snippets.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Serve the query from N index shards with scatter/gather \
             (with $(b,--index), the file must be a shard manifest).")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:"With $(b,--shards), serving replicas per shard.")
  in
  let remote =
    Arg.(
      value & flag
      & info [ "remote" ]
          ~doc:
            "Serve shards from the `xkq serve-shard` fleet recorded in the \
             manifest's endpoints instead of in-process engines (needs \
             $(b,--shards) and $(b,--index)).")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run a keyword query against an XML file.")
    Term.(
      const search $ path $ words $ semantics $ algo $ top $ topk_algo $ limit
      $ index_file $ explain $ shards $ replicas $ remote)

(* ------------------------------------------------------------------ *)

(* Batch mode: execute a whole query workload in parallel on a domain
   pool, reporting aggregate latency/throughput and cache behavior. *)

let read_queries file =
  let ic = open_in file in
  let queries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [] -> ()
         | words -> queries := words :: !queries
     done
   with End_of_file -> close_in ic);
  List.rev !queries

let generate_queries eng n k seed =
  let idx = Xk_core.Engine.index eng in
  let rng = Xk_datagen.Rng.create seed in
  let high = Xk_workload.Workload.max_df idx in
  let low = max 2 (high / 20) in
  Xk_workload.Workload.random_queries rng idx ~k ~high ~low ~n

let report_runs ~repeat ~n run_once =
  let t0 = Unix.gettimeofday () in
  let last = ref [] in
  for run = 1 to repeat do
    let r0 = Unix.gettimeofday () in
    last := run_once ();
    let dt = Unix.gettimeofday () -. r0 in
    Printf.printf "run %d/%d: %d queries in %.3fs (%.1f q/s)\n%!" run repeat n
      dt
      (float_of_int n /. dt)
  done;
  (Unix.gettimeofday () -. t0, !last)

let report_throughput ~total wall =
  Printf.printf "throughput: %.1f q/s, mean latency %.3f ms/query\n"
    (float_of_int total /. wall)
    (wall *. 1000. /. float_of_int total)

let report_cache (c : Xk_index.Shard_cache.stats) =
  Printf.printf "cache: %d hits, %d misses, %d evictions, %d/%d entries\n"
    c.hits c.misses c.evictions c.entries c.capacity

let report_failures outcomes =
  List.iter
    (fun o ->
      match o with
      | Xk_exec.Query_service.Failed f ->
          Printf.eprintf "failed request: %s\n" f.message
      | _ -> ())
    outcomes

(* Only completed requests are comparable; deadline/admission policy
   legitimately degrades the rest.  At equal scores the single-index
   top-K heap's emission order is unspecified, so top-K requests compare
   score sequences (complete requests stay node-exact). *)
let check_against ~what seq reqs outcomes =
  let same_hits (req : Xk_core.Engine.request) a b =
    List.length a = List.length b
    && List.for_all2
         (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
           x.score = y.score
           &&
           match req.req_mode with
           | Xk_core.Engine.Topk _ -> true
           | Xk_core.Engine.Complete _ -> x.node = y.node)
         a b
  in
  let rec all3 = function
    | [], [], [] -> true
    | r :: rs, a :: sq, o :: os ->
        (match o with
        | Xk_exec.Query_service.Ok b -> same_hits r a b
        | _ -> true)
        && all3 (rs, sq, os)
    | _ -> false
  in
  let same = all3 (reqs, seq, outcomes) in
  if same then
    Printf.printf "check: %s results identical to sequential execution\n" what
  else Printf.eprintf "check FAILED: %s results differ from sequential\n" what;
  same

(* Install a chaos schedule.  Disk-level corrupt targets are resolved
   against the shard manifest's replica files and registered as
   persistently corrupted, so the subsequent load exercises replica
   fallback; kill/slow events then drive the serving layer. *)
let install_chaos ~index_file spec =
  match Xk_resilience.Chaos.of_spec spec with
  | Error msg -> failwith (Printf.sprintf "--chaos: %s" msg)
  | Ok schedule -> (
      Xk_resilience.Chaos.install schedule;
      match Xk_resilience.Chaos.corrupt_targets () with
      | [] -> ()
      | _ -> (
          match index_file with
          | None ->
              failwith
                "--chaos corrupt@ targets need --index MANIFEST (the segments \
                 to corrupt live on disk)"
          | Some p -> (
              match Xk_index.Shard_io.replica_files p with
              | Error e -> failwith (Xk_index.Shard_io.error_message e)
              | Ok files ->
                  Array.iteri
                    (fun s reps ->
                      Array.iteri
                        (fun r file ->
                          if
                            Xk_resilience.Chaos.corrupt_matches ~shard:s
                              ~replica:r
                          then Xk_resilience.Fault_injection.mark_corrupt ~path:file)
                        reps)
                    files)))

let batch path queries_file semantics algo top topk_algo domains repeat gen
    gen_k seed check index_file deadline_ms max_queue faults shards replicas
    hedge_ms chaos remote =
  if remote && shards = None then
    failwith "--remote serves shards; add --shards N and --index MANIFEST";
  (match faults with
  | None -> ()
  | Some spec -> (
      match Xk_resilience.Fault_injection.of_spec spec with
      | Ok config -> Xk_resilience.Fault_injection.configure config
      | Error msg -> failwith (Printf.sprintf "--faults: %s" msg)));
  (match chaos with
  | None -> ()
  | Some spec ->
      if shards = None then
        failwith "--chaos addresses (shard, replica) targets; use --shards";
      install_chaos ~index_file spec);
  match shards with
  | None ->
      let eng = load_engine ?index_file path in
      let queries =
        match queries_file with
        | Some qf -> read_queries qf
        | None -> generate_queries eng gen gen_k seed
      in
      if queries = [] then failwith "empty workload";
      let reqs =
        List.map
          (fun words -> request_of words semantics algo top topk_algo)
          queries
      in
      let svc = Xk_exec.Query_service.create ~domains ?max_queue eng in
      let n = List.length reqs in
      let wall, last =
        report_runs ~repeat ~n (fun () ->
            Xk_exec.Query_service.exec_batch ?deadline_ms svc reqs)
      in
      let total = n * repeat in
      Printf.printf
        "batch done: %d queries (%d x %d) on %d domain(s) in %.3fs\n" total
        repeat n domains wall;
      report_throughput ~total wall;
      let st = Xk_exec.Query_service.stats svc in
      Printf.printf
        "outcomes: %d ok, %d partial, %d timeout, %d rejected, %d failed\n"
        st.completed st.partials st.timeouts st.rejected st.failed;
      report_cache st.cache;
      report_failures last;
      let ok =
        (not check)
        || check_against ~what:"parallel"
             (Xk_core.Engine.query_batch eng reqs)
             reqs last
      in
      Xk_exec.Query_service.shutdown svc;
      (* Exit code reflects hard failures only: timeouts and rejections are
         service policy, not errors. *)
      let hard_failures = List.exists Xk_exec.Query_service.is_failure last in
      if (not ok) || hard_failures then exit 1
  | Some shard_n ->
      let sharded = load_sharded ?index_file ~shards:shard_n path in
      (* The unsharded reference engine is only built when something needs
         corpus-wide term statistics: workload generation or --check. *)
      let ref_eng = lazy (load_engine path) in
      let queries =
        match queries_file with
        | Some qf -> read_queries qf
        | None -> generate_queries (Lazy.force ref_eng) gen gen_k seed
      in
      if queries = [] then failwith "empty workload";
      let reqs =
        List.map
          (fun words -> request_of words semantics algo top topk_algo)
          queries
      in
      let endpoints =
        if remote then Some (remote_endpoints ~index_file) else None
      in
      let sx =
        Xk_exec.Shard_exec.create ~domains ?max_queue ~replicas
          ?hedge_delay_ms:hedge_ms ?endpoints sharded
      in
      let n = List.length reqs in
      let wall, last =
        report_runs ~repeat ~n (fun () ->
            Xk_exec.Shard_exec.exec_batch ?deadline_ms sx reqs)
      in
      let total = n * repeat in
      Printf.printf
        "batch done: %d queries (%d x %d) over %d shard(s) x %d replica(s) on \
         %d domain(s) in %.3fs\n"
        total repeat n
        (Xk_exec.Shard_exec.shard_count sx)
        (Xk_exec.Shard_exec.replica_count sx)
        (Xk_exec.Shard_exec.domains sx)
        wall;
      report_throughput ~total wall;
      let st = Xk_exec.Shard_exec.stats sx in
      Printf.printf
        "outcomes: %d ok, %d partial, %d degraded, %d timeout, %d rejected, \
         %d failed\n"
        st.completed st.partials st.degraded st.timeouts st.rejected st.failed;
      if st.failovers + st.hedges > 0 || st.degraded > 0 then
        Printf.printf "resilience: %d failover(s), %d hedge(s) (%d won)\n"
          st.failovers st.hedges st.hedge_wins;
      report_cache st.cache;
      report_failures last;
      let ok =
        (not check)
        || check_against ~what:"sharded"
             (Xk_core.Engine.query_batch (Lazy.force ref_eng) reqs)
             reqs last
      in
      Xk_exec.Shard_exec.shutdown sx;
      let hard_failures = List.exists Xk_exec.Query_service.is_failure last in
      (* Exit classes: 1 = hard failure or failed --check; 2 = served, but
         degraded (lost shards).  Timeouts/rejections remain policy. *)
      if (not ok) || hard_failures then exit 1
      else if st.degraded > 0 then exit 2

let batch_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let queries_file =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:
            "Query file: one query per line, keywords separated by spaces, \
             '#' starts a comment.  Omitted: a random workload is generated \
             (see $(b,--gen)).")
  in
  let semantics =
    Arg.(
      value
      & opt semantics_conv Xk_core.Engine.Elca
      & info [ "semantics" ] ~doc:"elca or slca.")
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Xk_core.Engine.Join_based
      & info [ "algo" ] ~doc:"Complete-mode algorithm.")
  in
  let top =
    Arg.(
      value & opt (some int) None & info [ "top" ] ~doc:"Top-K mode with K results.")
  in
  let topk_algo =
    Arg.(
      value
      & opt topk_algo_conv Xk_core.Engine.Topk_join
      & info [ "topk-algo" ] ~doc:"Top-K-mode algorithm.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Worker domains.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~doc:"Repetitions of the batch.")
  in
  let gen =
    Arg.(
      value & opt int 100
      & info [ "gen" ] ~doc:"Generated queries when QUERIES is omitted.")
  in
  let gen_k =
    Arg.(
      value & opt int 2
      & info [ "gen-k" ] ~doc:"Keywords per generated query.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload generation seed.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Verify parallel results against sequential execution.")
  in
  let index_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~doc:"Saved index file (from `xkq index`).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request deadline in milliseconds.  Expired top-K requests \
             degrade to partial results; complete requests time out.")
  in
  let max_queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ]
          ~doc:
            "Admission bound: maximum in-flight requests; excess requests \
             are rejected without executing.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ]
          ~doc:
            "Fault-injection spec (comma-separated: io, corrupt, latency, \
             query), as in \\$(b,XK_FAULTS).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Serve the batch from N index shards: every query fans out to \
             one job per shard and a gather step merges the per-shard \
             answers (with $(b,--index), the file must be a shard \
             manifest).")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "With $(b,--shards), serving replicas per shard: attempts fail \
             over across replicas, and a query degrades (exit code 2) \
             instead of failing when every replica of a shard is down.")
  in
  let hedge_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-ms" ]
          ~doc:
            "Hedge a shard attempt on the next-best replica once the first \
             has been out for this many milliseconds (needs --replicas >= \
             2).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Deterministic chaos schedule, comma-separated events: \
             kill@sSrR:TICK (replica R of shard S is down from attempt \
             TICK), slow@sSrR:TICK:MS (added latency), corrupt@sSrR \
             (replica segment corrupted on disk; needs $(b,--index)), \
             drop@sSrR:TICK (connections to that replica are refused; \
             $(b,--remote) only).  S/R accept * as a wildcard.  Requires \
             $(b,--shards).")
  in
  let remote =
    Arg.(
      value & flag
      & info [ "remote" ]
          ~doc:
            "Serve shards from the `xkq serve-shard` fleet recorded in the \
             manifest's endpoints instead of in-process engines (needs \
             $(b,--shards) and $(b,--index)).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Execute a query workload in parallel on a domain pool."
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 on full service; 1 on hard failures or a failed --check; 2 \
              when every query was served but some only degraded (lost \
              shards under --replicas).";
         ])
    Term.(
      const batch $ path $ queries_file $ semantics $ algo $ top $ topk_algo
      $ domains $ repeat $ gen $ gen_k $ seed $ check $ index_file
      $ deadline_ms $ max_queue $ faults $ shards $ replicas $ hedge_ms
      $ chaos $ remote)

(* ------------------------------------------------------------------ *)

let stats path =
  let eng = load_engine path in
  let idx = Xk_core.Engine.index eng in
  let label = Xk_core.Engine.label eng in
  Printf.printf "nodes:  %d\n" (Xk_encoding.Labeling.node_count label);
  Printf.printf "height: %d\n" (Xk_encoding.Labeling.height label);
  Printf.printf "terms:  %d\n" (Xk_index.Index.term_count idx);
  let r = Xk_index.Index_sizes.report idx in
  let mb b = float_of_int b /. 1048576. in
  Printf.printf "index sizes (MB):\n";
  Printf.printf "  join-based  IL %.2f + sparse %.2f\n"
    (mb r.join_based.inverted_lists) (mb r.join_based.auxiliary);
  Printf.printf "  stack-based IL %.2f\n" (mb r.stack_based.inverted_lists);
  Printf.printf "  index-based B-tree %.2f\n" (mb r.index_based.inverted_lists);
  Printf.printf "  topk-join   IL %.2f + sparse %.2f\n"
    (mb r.topk_join.inverted_lists) (mb r.topk_join.auxiliary);
  Printf.printf "  RDIL        IL %.2f + B-trees %.2f\n"
    (mb r.rdil.inverted_lists) (mb r.rdil.auxiliary)

let stats_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics and index sizes.")
    Term.(const stats $ path)

(* ------------------------------------------------------------------ *)

let terms path near count =
  let eng = load_engine path in
  let idx = Xk_core.Engine.index eng in
  let ids = Xk_index.Index.terms_by_df idx in
  let shown = ref 0 in
  Array.iter
    (fun id ->
      let df = Xk_index.Index.df idx id in
      if !shown < count && df >= near / 2 && df <= near * 2 then begin
        incr shown;
        Printf.printf "%8d  %s\n" df (Xk_index.Index.term idx id)
      end)
    ids;
  if !shown = 0 then Printf.printf "no terms with frequency near %d\n" near

let terms_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let near =
    Arg.(value & opt int 100 & info [ "near" ] ~doc:"Target document frequency.")
  in
  let count = Arg.(value & opt int 20 & info [ "count" ] ~doc:"Terms to list.") in
  Cmd.v
    (Cmd.info "terms" ~doc:"List terms near a document frequency.")
    Term.(const terms $ path $ near $ count)

(* ------------------------------------------------------------------ *)

(* Long-lived shard server: load the manifest (the full manifest — per
   shard scoring needs corpus-global statistics, so every shard's
   dictionary must be present), then answer this one shard's queries
   over the frame protocol until killed. *)
let serve_shard path index_file shard replica port host workers chaos =
  (match chaos with
  | None -> ()
  | Some spec -> install_chaos ~index_file:(Some index_file) spec);
  let sharded = load_sharded ~index_file ~shards:1 path in
  let server =
    Xk_exec.Shard_server.create ~sharding:sharded ~shard ~replica
  in
  match Xk_exec.Shard_server.serve ~host ~port server with
  | Error msg -> failwith (Printf.sprintf "serve-shard: %s" msg)
  | Ok listener ->
      (* Ephemeral ports (--port 0) are announced so a harness can
         collect the bound address before sending traffic. *)
      Printf.printf "serving shard %d replica %d on %s:%d\n%!" shard replica
        (Xk_rpc.Server.host listener)
        (Xk_rpc.Server.port listener);
      Xk_rpc.Server.run ~workers listener
        ~handler:(Xk_exec.Shard_server.dispatch server)

let serve_shard_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let index_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "index" ]
          ~doc:"Shard manifest (from `xkq index --shards`).")
  in
  let shard =
    Arg.(
      required
      & opt (some int) None
      & info [ "shard" ] ~doc:"The shard this server answers for.")
  in
  let replica =
    Arg.(
      value & opt int 0
      & info [ "replica" ]
          ~doc:"This server's replica identity (chaos targeting).")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ]
          ~doc:"TCP port to bind; 0 picks an ephemeral port (announced).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Address to bind.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ]
          ~doc:
            "Connection-serving domains.  1 (default) serves connections \
             inline on the accept loop; more lets several clients drain \
             replies concurrently from one zero-copy segment.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Chaos schedule applied server-side (same syntax as `xkq \
             batch --chaos`); an armed kill@ closes connections without a \
             reply.")
  in
  Cmd.v
    (Cmd.info "serve-shard"
       ~doc:"Serve one index shard over the binary RPC protocol."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Loads the shard manifest and answers per-shard query frames \
              for one (shard, replica) identity until the process is \
              killed.  A fleet of these — one per replica recorded in the \
              manifest's endpoints — backs `xkq batch --remote` and `xkq \
              search --remote`.";
         ])
    Term.(
      const serve_shard $ path $ index_file $ shard $ replica $ port $ host
      $ workers $ chaos)

(* ------------------------------------------------------------------ *)

(* Re-partition the corpus with the manifest's recorded assignment, so a
   rebuilt segment is bit-compatible with what the stored shards were.
   Lazy: the corpus is only parsed if a shard actually has no surviving
   clean copy. *)
let rebuild_source ~index_file corpus =
  Option.map
    (fun path ->
      let sharded =
        lazy
          (match Xk_index.Shard_io.partition_spec index_file with
          | Error e -> failwith (Xk_index.Shard_io.error_message e)
          | Ok (shards, assignment) ->
              let doc = Xk_xml.Xml_parser.parse_file_exn path in
              Xk_index.Sharding.partition ~assignment ~shards doc)
      in
      fun ~shard -> Some (Xk_index.Sharding.index (Lazy.force sharded) shard))
    corpus

let heal corpus index_file do_repair slice throttle_ms budget_ms =
  let budget =
    Option.map
      (fun ms -> Xk_resilience.Budget.create ~deadline_ms:ms ())
      budget_ms
  in
  match Xk_index.Repair.scrub ?budget ~slice ~throttle_ms index_file with
  | Error e ->
      Printf.eprintf "heal: %s\n" (Xk_index.Shard_io.error_message e);
      exit 1
  | Ok report ->
      List.iter
        (fun (e : Xk_resilience.Scrub.entry) ->
          match e.e_status with
          | Xk_resilience.Scrub.Clean -> ()
          | Xk_resilience.Scrub.Missing ->
              Printf.printf "s%dr%d %s: missing\n" e.e_shard e.e_replica
                e.e_file
          | Xk_resilience.Scrub.Damaged msg ->
              Printf.printf "s%dr%d %s: damaged (%s)\n" e.e_shard e.e_replica
                e.e_file msg)
        report.entries;
      print_endline (Xk_resilience.Scrub.summary_line report);
      if not do_repair then begin
        if not (Xk_resilience.Scrub.healthy report) then exit 2
      end
      else begin
        let summary =
          Xk_index.Repair.repair
            ?rebuild:(rebuild_source ~index_file corpus)
            report
        in
        List.iter
          (fun o -> print_endline (Xk_index.Repair.outcome_line o))
          summary.outcomes;
        print_endline (Xk_index.Repair.summary_line summary);
        if summary.unrepairable > 0 || not report.complete then exit 2
      end

let heal_cmd =
  let corpus =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Corpus file; when given, shards with no surviving clean copy \
             are rebuilt from it (re-partitioned with the manifest's \
             recorded assignment).")
  in
  let index_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "index" ] ~doc:"Shard manifest (from `xkq index --shards`).")
  in
  let do_repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"Rewrite damaged/missing copies instead of only reporting.")
  in
  let slice =
    Arg.(
      value & opt int 4
      & info [ "slice" ] ~doc:"Files verified per scrub slice.")
  in
  let throttle_ms =
    Arg.(
      value & opt float 0.
      & info [ "throttle-ms" ] ~doc:"Sleep between scrub slices.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-ms" ]
          ~doc:"Wall budget for the scrub pass (incomplete pass exits 2).")
  in
  Cmd.v
    (Cmd.info "heal"
       ~doc:"Scrub a shard manifest's replicas and repair damaged copies."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Re-validates every replica segment recorded in the manifest \
              through the full v3 verification path and classifies each \
              copy clean, damaged, or missing.  With $(b,--repair), damaged \
              and missing copies are rewritten from a surviving clean \
              replica (atomic write + post-write verify) or rebuilt from \
              the corpus.  Exit class: 0 all clean (or all healed), 1 \
              manifest error, 2 damage remains.";
         ])
    Term.(
      const heal $ corpus $ index_file $ do_repair $ slice $ throttle_ms
      $ budget_ms)

(* ------------------------------------------------------------------ *)

let supervise corpus index_file interval_ms backoff_ms backoff_cap_ms flap_cap
    grace_ms heal_every cycles state_dir seed workers =
  let eps = remote_endpoints ~index_file:(Some index_file) in
  let specs =
    Array.to_list
      (Array.concat
         (Array.to_list
            (Array.mapi
               (fun s replicas ->
                 Array.mapi
                   (fun r (host, port) ->
                     {
                       Xk_exec.Supervisor.sv_shard = s;
                       sv_replica = r;
                       sv_host = host;
                       sv_port = port;
                     })
                   replicas)
               eps)))
  in
  if not (Sys.file_exists state_dir) then Unix.mkdir state_dir 0o755;
  let label = Xk_exec.Supervisor.spec_label in
  let state_file spec ext = Filename.concat state_dir (label spec ^ ext) in
  let exe = Sys.executable_name in
  let spawn (spec : Xk_exec.Supervisor.spec) =
    try
      let log =
        Unix.openfile
          (state_file spec ".log")
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
          0o644
      in
      let args =
        [|
          exe; "serve-shard"; corpus;
          "--index"; index_file;
          "--shard"; string_of_int spec.sv_shard;
          "--replica"; string_of_int spec.sv_replica;
          "--host"; spec.sv_host;
          "--port"; string_of_int spec.sv_port;
          "--workers"; string_of_int workers;
        |]
      in
      let pid = Unix.create_process exe args Unix.stdin log log in
      Unix.close log;
      Out_channel.with_open_text (state_file spec ".pid") (fun oc ->
          Printf.fprintf oc "%d\n" pid);
      Ok pid
    with exn -> Error (Printexc.to_string exn)
  in
  let alive pid =
    (* Children are reaped here: WNOHANG returns 0 while the process
       runs and collects the zombie the cycle after a kill or crash. *)
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> true
    | _ -> false
    | exception Unix.Unix_error _ -> false
  in
  let kill pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
  let ping (spec : Xk_exec.Supervisor.spec) =
    match
      Xk_rpc.Client.ping ~timeout_ms:1000. ~host:spec.sv_host
        ~port:spec.sv_port ()
    with
    | () -> true
    | exception _ -> false
  in
  let heal () =
    match Xk_index.Repair.scrub ~throttle_ms:1.0 index_file with
    | Error e -> failwith (Xk_index.Shard_io.error_message e)
    | Ok report ->
        let summary =
          Xk_index.Repair.repair
            ?rebuild:(rebuild_source ~index_file (Some corpus))
            report
        in
        {
          Xk_exec.Supervisor.h_clean = report.clean;
          h_damaged = report.damaged;
          h_missing = report.missing;
          h_repaired = summary.repaired;
          h_unrepairable = summary.unrepairable;
        }
  in
  let log_event ev =
    let stamp = Unix.gettimeofday () in
    let line =
      match (ev : Xk_exec.Supervisor.event) with
      | Spawned { spec; pid } ->
          Printf.sprintf "%s spawned pid %d" (label spec) pid
      | Died { spec; reason } ->
          Printf.sprintf "%s died: %s" (label spec) reason
      | Backoff_scheduled { spec; delay_ms; failures } ->
          Printf.sprintf "%s restart in %.0fms (failure %d)" (label spec)
            delay_ms failures
      | Quarantine { spec; failures } ->
          Printf.sprintf "%s quarantined after %d consecutive failures"
            (label spec) failures
      | Heal_ran h ->
          Printf.sprintf
            "heal: %d clean, %d damaged, %d missing, %d repaired, %d \
             unrepairable"
            h.h_clean h.h_damaged h.h_missing h.h_repaired h.h_unrepairable
      | Heal_failed msg -> Printf.sprintf "heal failed: %s" msg
    in
    Printf.printf "[%.3f] %s\n%!" stamp line
  in
  let config =
    {
      Xk_exec.Supervisor.backoff_base_ms = backoff_ms;
      backoff_cap_ms;
      flap_cap;
      start_grace_ms = grace_ms;
      heal_every;
    }
  in
  let sup =
    Xk_exec.Supervisor.create ~config ?seed ~on_event:log_event ~heal
      ~procs:{ spawn; alive; kill; ping }
      specs
  in
  let stop_on_signal _ = Xk_exec.Supervisor.stop sup in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal);
  Printf.printf "supervising %d replica(s) from %s\n%!" (List.length specs)
    index_file;
  Xk_exec.Supervisor.run ~interval_ms
    ?cycles:(if cycles = 0 then None else Some cycles)
    ~on_cycle:(fun t ->
      Printf.printf "%s\n%!" (Xk_exec.Supervisor.status_line t))
    sup;
  Xk_exec.Supervisor.shutdown sup;
  Printf.printf "supervisor stopped: %s\n%!"
    (Xk_exec.Supervisor.status_line sup)

let supervise_cmd =
  let corpus =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let index_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "index" ]
          ~doc:
            "Shard manifest with recorded endpoints (from `xkq index \
             --shards --rpc-base-port`).")
  in
  let interval_ms =
    Arg.(
      value & opt float 500.
      & info [ "interval-ms" ] ~doc:"Supervision cycle period.")
  in
  let backoff_ms =
    Arg.(
      value & opt float 200.
      & info [ "backoff-ms" ] ~doc:"Restart backoff floor.")
  in
  let backoff_cap_ms =
    Arg.(
      value & opt float 5000.
      & info [ "backoff-cap-ms" ] ~doc:"Restart backoff ceiling.")
  in
  let flap_cap =
    Arg.(
      value & opt int 5
      & info [ "flap-cap" ]
          ~doc:
            "Consecutive failures beyond which a replica is quarantined \
             instead of restarted.")
  in
  let grace_ms =
    Arg.(
      value
      & opt float 30000.
      & info [ "start-grace-ms" ]
          ~doc:"How long a fresh spawn may load before ping failures count.")
  in
  let heal_every =
    Arg.(
      value & opt int 4
      & info [ "heal-every" ]
          ~doc:"Run the scrub/repair pass every N cycles (0 disables).")
  in
  let cycles =
    Arg.(
      value & opt int 0
      & info [ "cycles" ] ~doc:"Stop after N cycles (0 = run until killed).")
  in
  let state_dir =
    Arg.(
      value & opt string "xk-fleet"
      & info [ "state-dir" ]
          ~doc:"Directory for per-replica pid and log files.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Deterministic restart-jitter seed.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~doc:"Connection-serving domains per server.")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:"Keep a serve-shard fleet running, healing data and processes."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Spawns one serve-shard process per (shard, replica) endpoint \
              recorded in the manifest and supervises the fleet: dead or \
              unresponsive servers are restarted with decorrelated-jitter \
              backoff, persistent crashers are quarantined after \
              $(b,--flap-cap) consecutive failures, and every \
              $(b,--heal-every) cycles the replica files are scrubbed and \
              damaged copies repaired from surviving replicas (or rebuilt \
              from the corpus).  One fleet status line is printed per \
              cycle.  SIGTERM/SIGINT stop the loop and kill the children.";
         ])
    Term.(
      const supervise $ corpus $ index_file $ interval_ms $ backoff_ms
      $ backoff_cap_ms $ flap_cap $ grace_ms $ heal_every $ cycles
      $ state_dir $ seed $ workers)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "xkq" ~version:"1.0.0"
      ~doc:"Top-K keyword search in XML databases (ICDE 2010 reproduction)."
  in
  exit
    (Cmd.eval ~term_err:1
       (Cmd.group info
          [
            generate_cmd;
            index_cmd;
            mutate_cmd;
            compact_cmd;
            search_cmd;
            batch_cmd;
            serve_shard_cmd;
            supervise_cmd;
            heal_cmd;
            stats_cmd;
            terms_cmd;
          ]))
