(* xkq: command-line XML keyword search.

     xkq generate --dataset dblp --scale 0.5 --out corpus.xml
     xkq index corpus.xml --out corpus.idx
     xkq search corpus.xml xml keyword --semantics elca --algo join
     xkq search corpus.xml xml keyword --index corpus.idx --top 10
     xkq batch corpus.xml queries.txt --domains 4 --top 10 --check
     xkq stats corpus.xml
     xkq terms corpus.xml --near 100                                  *)

open Cmdliner

(* Index the document, or re-attach a saved index to skip tokenization. *)
let load_engine ?index_file path =
  let t0 = Unix.gettimeofday () in
  let eng =
    match index_file with
    | None -> Xk_core.Engine.of_file path
    | Some idx_path ->
        let doc = Xk_xml.Xml_parser.parse_file_exn path in
        let label = Xk_encoding.Labeling.label doc in
        Xk_core.Engine.of_index (Xk_index.Index_io.load label idx_path)
  in
  Printf.eprintf "%s %s in %.2fs\n%!"
    (match index_file with None -> "indexed" | Some _ -> "loaded")
    path
    (Unix.gettimeofday () -. t0);
  eng

(* Same entry point for sharded serving: partition in memory, or reload a
   shard manifest written by `xkq index --shards`. *)
let load_sharded ?index_file ~shards path =
  let t0 = Unix.gettimeofday () in
  let doc = Xk_xml.Xml_parser.parse_file_exn path in
  let sharded =
    match index_file with
    | Some p when Xk_index.Shard_io.is_manifest p -> (
        match Xk_index.Shard_io.load_result doc p with
        | Ok s -> s
        | Error e -> failwith (Xk_index.Shard_io.error_message e))
    | Some p ->
        failwith
          (Printf.sprintf
             "%s is not a shard manifest (build one with `xkq index --shards`)"
             p)
    | None -> Xk_index.Sharding.partition ~shards doc
  in
  Printf.eprintf "%s %s as %d shard(s) in %.2fs\n%!"
    (match index_file with None -> "indexed" | Some _ -> "loaded")
    path
    (Xk_index.Sharding.count sharded)
    (Unix.gettimeofday () -. t0);
  sharded

(* The endpoint grid for --remote: every replica of the manifest must
   carry a recorded (host, port). *)
let remote_endpoints ~index_file =
  match index_file with
  | None -> failwith "--remote needs --index MANIFEST (with recorded endpoints)"
  | Some p -> (
      match Xk_index.Shard_io.endpoints p with
      | Error e -> failwith (Xk_index.Shard_io.error_message e)
      | Ok eps ->
          Array.map
            (Array.map (function
              | Some hp -> hp
              | None ->
                  failwith
                    "--remote: the manifest has replicas without endpoints \
                     (rebuild with `xkq index --shards --rpc-base-port`)"))
            eps)

(* ------------------------------------------------------------------ *)

let generate dataset scale out =
  let doc =
    match dataset with
    | "dblp" -> (Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale)).doc
    | "xmark" -> (Xk_datagen.Xmark_gen.generate (Xk_datagen.Xmark_gen.scaled scale)).doc
    | other -> failwith (Printf.sprintf "unknown dataset %S (dblp|xmark)" other)
  in
  Xk_xml.Xml_print.to_file out doc;
  Printf.printf "wrote %s (%d nodes)\n" out (Xk_xml.Xml_tree.node_count doc)

let generate_cmd =
  let dataset =
    Arg.(value & opt string "dblp" & info [ "dataset" ] ~doc:"dblp or xmark.")
  in
  let scale = Arg.(value & opt float 0.2 & info [ "scale" ] ~doc:"Size factor.") in
  let out =
    Arg.(value & opt string "corpus.xml" & info [ "out" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic corpus.")
    Term.(const generate $ dataset $ scale $ out)

(* ------------------------------------------------------------------ *)

let index_doc path out shards replicas rpc_host rpc_base_port =
  if shards <= 1 then begin
    if rpc_base_port <> None then
      failwith "--rpc-base-port needs --shards (endpoints live in the manifest)";
    let eng = load_engine path in
    Xk_index.Index_io.save (Xk_core.Engine.index eng) out;
    Printf.printf "wrote %s (%.2f MB)\n" out
      (float_of_int (Xk_index.Index_io.file_size out) /. 1048576.)
  end
  else begin
    let sharded = load_sharded ~shards path in
    (* Endpoint layout mirrors the fleet bring-up loop: shard s replica
       r serves on base + s*replicas + r. *)
    let endpoints =
      Option.map
        (fun base ->
          Array.init (Xk_index.Sharding.count sharded) (fun s ->
              Array.init replicas (fun r ->
                  (rpc_host, base + (s * replicas) + r))))
        rpc_base_port
    in
    Xk_index.Shard_io.save ~replicas ?endpoints sharded out;
    let mb b = float_of_int b /. 1048576. in
    let total = ref (Xk_index.Index_io.file_size out) in
    Printf.printf "wrote %s (manifest, %d shards x %d replica(s))\n" out
      (Xk_index.Sharding.count sharded)
      replicas;
    Array.iteri
      (fun s (r : Xk_index.Index_sizes.report) ->
        let seg = Xk_index.Shard_io.segment_path out ~shard:s in
        let bytes = Xk_index.Index_io.file_size seg in
        for rep = 0 to replicas - 1 do
          total :=
            !total
            + Xk_index.Index_io.file_size
                (Xk_index.Shard_io.replica_path out ~shard:s ~replica:rep)
        done;
        let idx = Xk_index.Sharding.index sharded s in
        Printf.printf
          "  shard %3d: %-24s %7.2f MB, %8d nodes, %7d terms, IL %.2f MB\n" s
          (Filename.basename seg) (mb bytes)
          (Xk_encoding.Labeling.node_count (Xk_index.Index.label idx))
          (Xk_index.Index.term_count idx)
          (mb r.join_based.inverted_lists))
      (Xk_index.Sharding.size_reports sharded);
    Printf.printf "total on disk: %.2f MB (manifest + %d segment file(s))\n"
      (mb !total)
      (Xk_index.Sharding.count sharded * replicas)
  end

let index_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt string "corpus.idx" & info [ "out" ] ~doc:"Index file.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Partition the index into N shards and save a shard manifest \
             plus one segment per shard, with a per-shard size breakdown.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "With $(b,--shards), write N independently verified segment \
             copies per shard; loaders fall back across copies on \
             corruption or IO failure.")
  in
  let rpc_host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "rpc-host" ]
          ~doc:"With $(b,--rpc-base-port), the host recorded per endpoint.")
  in
  let rpc_base_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "rpc-base-port" ]
          ~doc:
            "Record a serving endpoint per replica in the manifest: shard S \
             replica R gets port BASE + S*replicas + R on $(b,--rpc-host).  \
             `xkq batch --remote` dials these; `xkq serve-shard` binds \
             them.")
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build and save an index for an XML file.")
    Term.(
      const index_doc $ path $ out $ shards $ replicas $ rpc_host
      $ rpc_base_port)

(* ------------------------------------------------------------------ *)

let semantics_conv =
  Arg.enum [ ("elca", Xk_core.Engine.Elca); ("slca", Xk_core.Engine.Slca) ]

let algo_conv =
  Arg.enum
    [
      ("join", Xk_core.Engine.Join_based);
      ("stack", Xk_core.Engine.Stack_based);
      ("indexed", Xk_core.Engine.Index_based);
      ("oracle", Xk_core.Engine.Oracle);
    ]

let topk_algo_conv =
  Arg.enum
    [
      ("topk-join", Xk_core.Engine.Topk_join);
      ("complete", Xk_core.Engine.Complete_then_sort);
      ("rdil", Xk_core.Engine.Rdil_baseline);
      ("hybrid", Xk_core.Engine.Hybrid);
    ]

let print_hits_with ~pp ~snip words explain hits limit =
  List.iteri
    (fun i (h : Xk_baselines.Hit.t) ->
      if i < limit then begin
        Fmt.pr "%2d. %a@." (i + 1) pp h;
        if explain then
          List.iter
            (fun (kw, text) -> Fmt.pr "      [%s] ...%s...@." kw text)
            (snip words h)
      end)
    hits;
  let n = List.length hits in
  if n > limit then Fmt.pr "... and %d more results@." (n - limit)

let print_hits eng =
  print_hits_with ~pp:(Xk_core.Engine.pp_hit eng)
    ~snip:(fun words h -> Xk_core.Engine.snippet eng words h)

let request_of words semantics algo top topk_algo =
  match top with
  | Some k -> Xk_core.Engine.topk_request ~semantics ~algorithm:topk_algo ~k words
  | None -> Xk_core.Engine.complete_request ~semantics ~algorithm:algo words

let search path words semantics algo top topk_algo limit index_file explain
    shards replicas remote =
  if words = [] then failwith "no query keywords given";
  if remote && shards = None then
    failwith "--remote serves shards; add --shards N and --index MANIFEST";
  match shards with
  | None ->
      let eng = load_engine ?index_file path in
      let t0 = Unix.gettimeofday () in
      let hits =
        match top with
        | Some k ->
            Xk_core.Engine.query_topk ~semantics ~algorithm:topk_algo eng words
              ~k
        | None -> Xk_core.Engine.query ~semantics ~algorithm:algo eng words
      in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      Fmt.pr "%d result(s) in %.2f ms for {%s}@." (List.length hits) dt
        (String.concat " " words);
      print_hits eng words explain hits limit
  | Some n ->
      let sharded = load_sharded ?index_file ~shards:n path in
      let endpoints =
        if remote then Some (remote_endpoints ~index_file) else None
      in
      let sx = Xk_exec.Shard_exec.create ~replicas ?endpoints sharded in
      let req = request_of words semantics algo top topk_algo in
      let t0 = Unix.gettimeofday () in
      let outcome = Xk_exec.Shard_exec.exec sx req in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      let show label hits =
        Fmt.pr "%s%d result(s) in %.2f ms for {%s} over %d shard(s)@." label
          (List.length hits) dt
          (String.concat " " words)
          (Xk_exec.Shard_exec.shard_count sx);
        print_hits_with
          ~pp:(Xk_exec.Shard_exec.pp_hit sx)
          ~snip:(fun words h -> Xk_exec.Shard_exec.snippet sx words h)
          words explain hits limit
      in
      (match outcome with
      | Xk_exec.Query_service.Ok hits -> show "" hits
      | Xk_exec.Query_service.Partial hits -> show "partial: " hits
      | Xk_exec.Query_service.Degraded d ->
          show
            (Printf.sprintf "degraded (%.0f%% coverage, missing shard(s) %s): "
               (100. *. d.coverage)
               (String.concat "," (List.map string_of_int d.missing_shards)))
            d.hits
      | Xk_exec.Query_service.Timeout -> Fmt.pr "timed out with no result@."
      | Xk_exec.Query_service.Rejected -> Fmt.pr "rejected by admission control@."
      | Xk_exec.Query_service.Failed f -> Fmt.pr "failed: %s@." f.message);
      Xk_exec.Shard_exec.shutdown sx

let search_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let words = Arg.(value & pos_right 0 string [] & info [] ~docv:"KEYWORD") in
  let semantics =
    Arg.(
      value
      & opt semantics_conv Xk_core.Engine.Elca
      & info [ "semantics" ] ~doc:"elca or slca.")
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Xk_core.Engine.Join_based
      & info [ "algo" ] ~doc:"join, stack, indexed or oracle.")
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ] ~doc:"Top-K mode with K results.")
  in
  let topk_algo =
    Arg.(
      value
      & opt topk_algo_conv Xk_core.Engine.Topk_join
      & info [ "topk-algo" ] ~doc:"topk-join, complete, rdil or hybrid.")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Results to display.")
  in
  let index_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~doc:"Saved index file (from `xkq index`).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Show per-keyword witness snippets.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Serve the query from N index shards with scatter/gather \
             (with $(b,--index), the file must be a shard manifest).")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:"With $(b,--shards), serving replicas per shard.")
  in
  let remote =
    Arg.(
      value & flag
      & info [ "remote" ]
          ~doc:
            "Serve shards from the `xkq serve-shard` fleet recorded in the \
             manifest's endpoints instead of in-process engines (needs \
             $(b,--shards) and $(b,--index)).")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run a keyword query against an XML file.")
    Term.(
      const search $ path $ words $ semantics $ algo $ top $ topk_algo $ limit
      $ index_file $ explain $ shards $ replicas $ remote)

(* ------------------------------------------------------------------ *)

(* Batch mode: execute a whole query workload in parallel on a domain
   pool, reporting aggregate latency/throughput and cache behavior. *)

let read_queries file =
  let ic = open_in file in
  let queries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [] -> ()
         | words -> queries := words :: !queries
     done
   with End_of_file -> close_in ic);
  List.rev !queries

let generate_queries eng n k seed =
  let idx = Xk_core.Engine.index eng in
  let rng = Xk_datagen.Rng.create seed in
  let high = Xk_workload.Workload.max_df idx in
  let low = max 2 (high / 20) in
  Xk_workload.Workload.random_queries rng idx ~k ~high ~low ~n

let report_runs ~repeat ~n run_once =
  let t0 = Unix.gettimeofday () in
  let last = ref [] in
  for run = 1 to repeat do
    let r0 = Unix.gettimeofday () in
    last := run_once ();
    let dt = Unix.gettimeofday () -. r0 in
    Printf.printf "run %d/%d: %d queries in %.3fs (%.1f q/s)\n%!" run repeat n
      dt
      (float_of_int n /. dt)
  done;
  (Unix.gettimeofday () -. t0, !last)

let report_throughput ~total wall =
  Printf.printf "throughput: %.1f q/s, mean latency %.3f ms/query\n"
    (float_of_int total /. wall)
    (wall *. 1000. /. float_of_int total)

let report_cache (c : Xk_index.Shard_cache.stats) =
  Printf.printf "cache: %d hits, %d misses, %d evictions, %d/%d entries\n"
    c.hits c.misses c.evictions c.entries c.capacity

let report_failures outcomes =
  List.iter
    (fun o ->
      match o with
      | Xk_exec.Query_service.Failed f ->
          Printf.eprintf "failed request: %s\n" f.message
      | _ -> ())
    outcomes

(* Only completed requests are comparable; deadline/admission policy
   legitimately degrades the rest.  At equal scores the single-index
   top-K heap's emission order is unspecified, so top-K requests compare
   score sequences (complete requests stay node-exact). *)
let check_against ~what seq reqs outcomes =
  let same_hits (req : Xk_core.Engine.request) a b =
    List.length a = List.length b
    && List.for_all2
         (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
           x.score = y.score
           &&
           match req.req_mode with
           | Xk_core.Engine.Topk _ -> true
           | Xk_core.Engine.Complete _ -> x.node = y.node)
         a b
  in
  let rec all3 = function
    | [], [], [] -> true
    | r :: rs, a :: sq, o :: os ->
        (match o with
        | Xk_exec.Query_service.Ok b -> same_hits r a b
        | _ -> true)
        && all3 (rs, sq, os)
    | _ -> false
  in
  let same = all3 (reqs, seq, outcomes) in
  if same then
    Printf.printf "check: %s results identical to sequential execution\n" what
  else Printf.eprintf "check FAILED: %s results differ from sequential\n" what;
  same

(* Install a chaos schedule.  Disk-level corrupt targets are resolved
   against the shard manifest's replica files and registered as
   persistently corrupted, so the subsequent load exercises replica
   fallback; kill/slow events then drive the serving layer. *)
let install_chaos ~index_file spec =
  match Xk_resilience.Chaos.of_spec spec with
  | Error msg -> failwith (Printf.sprintf "--chaos: %s" msg)
  | Ok schedule -> (
      Xk_resilience.Chaos.install schedule;
      match Xk_resilience.Chaos.corrupt_targets () with
      | [] -> ()
      | _ -> (
          match index_file with
          | None ->
              failwith
                "--chaos corrupt@ targets need --index MANIFEST (the segments \
                 to corrupt live on disk)"
          | Some p -> (
              match Xk_index.Shard_io.replica_files p with
              | Error e -> failwith (Xk_index.Shard_io.error_message e)
              | Ok files ->
                  Array.iteri
                    (fun s reps ->
                      Array.iteri
                        (fun r file ->
                          if
                            Xk_resilience.Chaos.corrupt_matches ~shard:s
                              ~replica:r
                          then Xk_resilience.Fault_injection.mark_corrupt ~path:file)
                        reps)
                    files)))

let batch path queries_file semantics algo top topk_algo domains repeat gen
    gen_k seed check index_file deadline_ms max_queue faults shards replicas
    hedge_ms chaos remote =
  if remote && shards = None then
    failwith "--remote serves shards; add --shards N and --index MANIFEST";
  (match faults with
  | None -> ()
  | Some spec -> (
      match Xk_resilience.Fault_injection.of_spec spec with
      | Ok config -> Xk_resilience.Fault_injection.configure config
      | Error msg -> failwith (Printf.sprintf "--faults: %s" msg)));
  (match chaos with
  | None -> ()
  | Some spec ->
      if shards = None then
        failwith "--chaos addresses (shard, replica) targets; use --shards";
      install_chaos ~index_file spec);
  match shards with
  | None ->
      let eng = load_engine ?index_file path in
      let queries =
        match queries_file with
        | Some qf -> read_queries qf
        | None -> generate_queries eng gen gen_k seed
      in
      if queries = [] then failwith "empty workload";
      let reqs =
        List.map
          (fun words -> request_of words semantics algo top topk_algo)
          queries
      in
      let svc = Xk_exec.Query_service.create ~domains ?max_queue eng in
      let n = List.length reqs in
      let wall, last =
        report_runs ~repeat ~n (fun () ->
            Xk_exec.Query_service.exec_batch ?deadline_ms svc reqs)
      in
      let total = n * repeat in
      Printf.printf
        "batch done: %d queries (%d x %d) on %d domain(s) in %.3fs\n" total
        repeat n domains wall;
      report_throughput ~total wall;
      let st = Xk_exec.Query_service.stats svc in
      Printf.printf
        "outcomes: %d ok, %d partial, %d timeout, %d rejected, %d failed\n"
        st.completed st.partials st.timeouts st.rejected st.failed;
      report_cache st.cache;
      report_failures last;
      let ok =
        (not check)
        || check_against ~what:"parallel"
             (Xk_core.Engine.query_batch eng reqs)
             reqs last
      in
      Xk_exec.Query_service.shutdown svc;
      (* Exit code reflects hard failures only: timeouts and rejections are
         service policy, not errors. *)
      let hard_failures = List.exists Xk_exec.Query_service.is_failure last in
      if (not ok) || hard_failures then exit 1
  | Some shard_n ->
      let sharded = load_sharded ?index_file ~shards:shard_n path in
      (* The unsharded reference engine is only built when something needs
         corpus-wide term statistics: workload generation or --check. *)
      let ref_eng = lazy (load_engine path) in
      let queries =
        match queries_file with
        | Some qf -> read_queries qf
        | None -> generate_queries (Lazy.force ref_eng) gen gen_k seed
      in
      if queries = [] then failwith "empty workload";
      let reqs =
        List.map
          (fun words -> request_of words semantics algo top topk_algo)
          queries
      in
      let endpoints =
        if remote then Some (remote_endpoints ~index_file) else None
      in
      let sx =
        Xk_exec.Shard_exec.create ~domains ?max_queue ~replicas
          ?hedge_delay_ms:hedge_ms ?endpoints sharded
      in
      let n = List.length reqs in
      let wall, last =
        report_runs ~repeat ~n (fun () ->
            Xk_exec.Shard_exec.exec_batch ?deadline_ms sx reqs)
      in
      let total = n * repeat in
      Printf.printf
        "batch done: %d queries (%d x %d) over %d shard(s) x %d replica(s) on \
         %d domain(s) in %.3fs\n"
        total repeat n
        (Xk_exec.Shard_exec.shard_count sx)
        (Xk_exec.Shard_exec.replica_count sx)
        (Xk_exec.Shard_exec.domains sx)
        wall;
      report_throughput ~total wall;
      let st = Xk_exec.Shard_exec.stats sx in
      Printf.printf
        "outcomes: %d ok, %d partial, %d degraded, %d timeout, %d rejected, \
         %d failed\n"
        st.completed st.partials st.degraded st.timeouts st.rejected st.failed;
      if st.failovers + st.hedges > 0 || st.degraded > 0 then
        Printf.printf "resilience: %d failover(s), %d hedge(s) (%d won)\n"
          st.failovers st.hedges st.hedge_wins;
      report_cache st.cache;
      report_failures last;
      let ok =
        (not check)
        || check_against ~what:"sharded"
             (Xk_core.Engine.query_batch (Lazy.force ref_eng) reqs)
             reqs last
      in
      Xk_exec.Shard_exec.shutdown sx;
      let hard_failures = List.exists Xk_exec.Query_service.is_failure last in
      (* Exit classes: 1 = hard failure or failed --check; 2 = served, but
         degraded (lost shards).  Timeouts/rejections remain policy. *)
      if (not ok) || hard_failures then exit 1
      else if st.degraded > 0 then exit 2

let batch_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let queries_file =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:
            "Query file: one query per line, keywords separated by spaces, \
             '#' starts a comment.  Omitted: a random workload is generated \
             (see $(b,--gen)).")
  in
  let semantics =
    Arg.(
      value
      & opt semantics_conv Xk_core.Engine.Elca
      & info [ "semantics" ] ~doc:"elca or slca.")
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Xk_core.Engine.Join_based
      & info [ "algo" ] ~doc:"Complete-mode algorithm.")
  in
  let top =
    Arg.(
      value & opt (some int) None & info [ "top" ] ~doc:"Top-K mode with K results.")
  in
  let topk_algo =
    Arg.(
      value
      & opt topk_algo_conv Xk_core.Engine.Topk_join
      & info [ "topk-algo" ] ~doc:"Top-K-mode algorithm.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Worker domains.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~doc:"Repetitions of the batch.")
  in
  let gen =
    Arg.(
      value & opt int 100
      & info [ "gen" ] ~doc:"Generated queries when QUERIES is omitted.")
  in
  let gen_k =
    Arg.(
      value & opt int 2
      & info [ "gen-k" ] ~doc:"Keywords per generated query.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload generation seed.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Verify parallel results against sequential execution.")
  in
  let index_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~doc:"Saved index file (from `xkq index`).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request deadline in milliseconds.  Expired top-K requests \
             degrade to partial results; complete requests time out.")
  in
  let max_queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ]
          ~doc:
            "Admission bound: maximum in-flight requests; excess requests \
             are rejected without executing.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ]
          ~doc:
            "Fault-injection spec (comma-separated: io, corrupt, latency, \
             query), as in \\$(b,XK_FAULTS).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Serve the batch from N index shards: every query fans out to \
             one job per shard and a gather step merges the per-shard \
             answers (with $(b,--index), the file must be a shard \
             manifest).")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "With $(b,--shards), serving replicas per shard: attempts fail \
             over across replicas, and a query degrades (exit code 2) \
             instead of failing when every replica of a shard is down.")
  in
  let hedge_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-ms" ]
          ~doc:
            "Hedge a shard attempt on the next-best replica once the first \
             has been out for this many milliseconds (needs --replicas >= \
             2).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Deterministic chaos schedule, comma-separated events: \
             kill@sSrR:TICK (replica R of shard S is down from attempt \
             TICK), slow@sSrR:TICK:MS (added latency), corrupt@sSrR \
             (replica segment corrupted on disk; needs $(b,--index)), \
             drop@sSrR:TICK (connections to that replica are refused; \
             $(b,--remote) only).  S/R accept * as a wildcard.  Requires \
             $(b,--shards).")
  in
  let remote =
    Arg.(
      value & flag
      & info [ "remote" ]
          ~doc:
            "Serve shards from the `xkq serve-shard` fleet recorded in the \
             manifest's endpoints instead of in-process engines (needs \
             $(b,--shards) and $(b,--index)).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Execute a query workload in parallel on a domain pool."
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 on full service; 1 on hard failures or a failed --check; 2 \
              when every query was served but some only degraded (lost \
              shards under --replicas).";
         ])
    Term.(
      const batch $ path $ queries_file $ semantics $ algo $ top $ topk_algo
      $ domains $ repeat $ gen $ gen_k $ seed $ check $ index_file
      $ deadline_ms $ max_queue $ faults $ shards $ replicas $ hedge_ms
      $ chaos $ remote)

(* ------------------------------------------------------------------ *)

let stats path =
  let eng = load_engine path in
  let idx = Xk_core.Engine.index eng in
  let label = Xk_core.Engine.label eng in
  Printf.printf "nodes:  %d\n" (Xk_encoding.Labeling.node_count label);
  Printf.printf "height: %d\n" (Xk_encoding.Labeling.height label);
  Printf.printf "terms:  %d\n" (Xk_index.Index.term_count idx);
  let r = Xk_index.Index_sizes.report idx in
  let mb b = float_of_int b /. 1048576. in
  Printf.printf "index sizes (MB):\n";
  Printf.printf "  join-based  IL %.2f + sparse %.2f\n"
    (mb r.join_based.inverted_lists) (mb r.join_based.auxiliary);
  Printf.printf "  stack-based IL %.2f\n" (mb r.stack_based.inverted_lists);
  Printf.printf "  index-based B-tree %.2f\n" (mb r.index_based.inverted_lists);
  Printf.printf "  topk-join   IL %.2f + sparse %.2f\n"
    (mb r.topk_join.inverted_lists) (mb r.topk_join.auxiliary);
  Printf.printf "  RDIL        IL %.2f + B-trees %.2f\n"
    (mb r.rdil.inverted_lists) (mb r.rdil.auxiliary)

let stats_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics and index sizes.")
    Term.(const stats $ path)

(* ------------------------------------------------------------------ *)

let terms path near count =
  let eng = load_engine path in
  let idx = Xk_core.Engine.index eng in
  let ids = Xk_index.Index.terms_by_df idx in
  let shown = ref 0 in
  Array.iter
    (fun id ->
      let df = Xk_index.Index.df idx id in
      if !shown < count && df >= near / 2 && df <= near * 2 then begin
        incr shown;
        Printf.printf "%8d  %s\n" df (Xk_index.Index.term idx id)
      end)
    ids;
  if !shown = 0 then Printf.printf "no terms with frequency near %d\n" near

let terms_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let near =
    Arg.(value & opt int 100 & info [ "near" ] ~doc:"Target document frequency.")
  in
  let count = Arg.(value & opt int 20 & info [ "count" ] ~doc:"Terms to list.") in
  Cmd.v
    (Cmd.info "terms" ~doc:"List terms near a document frequency.")
    Term.(const terms $ path $ near $ count)

(* ------------------------------------------------------------------ *)

(* Long-lived shard server: load the manifest (the full manifest — per
   shard scoring needs corpus-global statistics, so every shard's
   dictionary must be present), then answer this one shard's queries
   over the frame protocol until killed. *)
let serve_shard path index_file shard replica port host chaos =
  (match chaos with
  | None -> ()
  | Some spec -> install_chaos ~index_file:(Some index_file) spec);
  let sharded = load_sharded ~index_file ~shards:1 path in
  let server =
    Xk_exec.Shard_server.create ~sharding:sharded ~shard ~replica
  in
  match Xk_exec.Shard_server.serve ~host ~port server with
  | Error msg -> failwith (Printf.sprintf "serve-shard: %s" msg)
  | Ok listener ->
      (* Ephemeral ports (--port 0) are announced so a harness can
         collect the bound address before sending traffic. *)
      Printf.printf "serving shard %d replica %d on %s:%d\n%!" shard replica
        (Xk_rpc.Server.host listener)
        (Xk_rpc.Server.port listener);
      Xk_rpc.Server.run listener
        ~handler:(Xk_exec.Shard_server.dispatch server)

let serve_shard_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let index_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "index" ]
          ~doc:"Shard manifest (from `xkq index --shards`).")
  in
  let shard =
    Arg.(
      required
      & opt (some int) None
      & info [ "shard" ] ~doc:"The shard this server answers for.")
  in
  let replica =
    Arg.(
      value & opt int 0
      & info [ "replica" ]
          ~doc:"This server's replica identity (chaos targeting).")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ]
          ~doc:"TCP port to bind; 0 picks an ephemeral port (announced).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Address to bind.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Chaos schedule applied server-side (same syntax as `xkq \
             batch --chaos`); an armed kill@ closes connections without a \
             reply.")
  in
  Cmd.v
    (Cmd.info "serve-shard"
       ~doc:"Serve one index shard over the binary RPC protocol."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Loads the shard manifest and answers per-shard query frames \
              for one (shard, replica) identity until the process is \
              killed.  A fleet of these — one per replica recorded in the \
              manifest's endpoints — backs `xkq batch --remote` and `xkq \
              search --remote`.";
         ])
    Term.(
      const serve_shard $ path $ index_file $ shard $ replica $ port $ host
      $ chaos)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "xkq" ~version:"1.0.0"
      ~doc:"Top-K keyword search in XML databases (ICDE 2010 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            index_cmd;
            search_cmd;
            batch_cmd;
            serve_shard_cmd;
            stats_cmd;
            terms_cmd;
          ]))
