(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section V) on the synthetic DBLP-like and XMark-like
   corpora, plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --quick      # reduced query counts
     dune exec bench/main.exe -- --only fig9 --scale 2.0

   Absolute times differ from the paper's 2007-era testbed; the shapes
   (who wins, by what factor, where the crossovers fall) are the point.
   EXPERIMENTS.md records paper-vs-measured for each artifact. *)

open Bench_util

type config = {
  scale : float;
  queries : int; (* queries per bucket (paper: 40) *)
  runs : int;    (* repetitions per query (paper: 5) *)
  seed : int;
  only : string list; (* empty = all *)
}

let wants cfg name = cfg.only = [] || List.mem name cfg.only

(* ------------------------------------------------------------------ *)
(* Corpora                                                             *)

type dataset = {
  ds_name : string;
  eng : Xk_core.Engine.t;
  correlated : string list list;
  uncorrelated : string list list;
}

let load_dblp cfg =
  let t0 = now () in
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled cfg.scale) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Xk_index.Index.build label in
  Printf.printf
    "DBLP-like corpus: %d papers, %d nodes, height %d, %d terms (%.1fs)\n%!"
    corpus.total_papers
    (Xk_encoding.Labeling.node_count label)
    (Xk_encoding.Labeling.height label)
    (Xk_index.Index.term_count idx)
    (now () -. t0);
  {
    ds_name = "DBLP";
    eng = Xk_core.Engine.of_index idx;
    correlated = corpus.correlated_queries;
    uncorrelated = corpus.uncorrelated_queries;
  }

let load_xmark cfg =
  let t0 = now () in
  let corpus = Xk_datagen.Xmark_gen.generate (Xk_datagen.Xmark_gen.scaled cfg.scale) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Xk_index.Index.build label in
  Printf.printf
    "XMark-like corpus: %d items, %d nodes, height %d, %d terms (%.1fs)\n%!"
    corpus.total_items
    (Xk_encoding.Labeling.node_count label)
    (Xk_encoding.Labeling.height label)
    (Xk_index.Index.term_count idx)
    (now () -. t0);
  {
    ds_name = "XMark";
    eng = Xk_core.Engine.of_index idx;
    correlated = corpus.correlated_queries;
    uncorrelated = [];
  }

let warm_query ds q =
  let idx = Xk_core.Engine.index ds.eng in
  Xk_index.Index.warm idx (List.filter_map (Xk_index.Index.term_id idx) q)

(* ------------------------------------------------------------------ *)
(* Table I: index sizes                                                *)

let table1 cfg datasets =
  if wants cfg "table1" then begin
    header "Table I: index sizes (MB)";
    Printf.printf
      "(IL = inverted lists incl. dictionary; aux = sparse indices / B-trees)\n";
    row
      [ scell 14 "algorithm"; scell 12 "structure";
        scell 10 (List.nth datasets 0).ds_name;
        scell 10 (List.nth datasets 1).ds_name ];
    let reports =
      List.map
        (fun ds -> Xk_index.Index_sizes.report (Xk_core.Engine.index ds.eng))
        datasets
    in
    let line name structure get =
      row
        ([ scell 14 name; scell 12 structure ]
        @ List.map (fun (r : Xk_index.Index_sizes.report) -> fcell 10 (mb (get r))) reports)
    in
    line "join-based" "IL" (fun r -> r.join_based.inverted_lists);
    line "" "sparse" (fun r -> r.join_based.auxiliary);
    line "stack-based" "IL" (fun r -> r.stack_based.inverted_lists);
    line "index-based" "B-tree" (fun r -> r.index_based.inverted_lists);
    line "topk-join" "IL" (fun r -> r.topk_join.inverted_lists);
    line "" "sparse" (fun r -> r.topk_join.auxiliary);
    line "RDIL" "IL" (fun r -> r.rdil.inverted_lists);
    line "" "B-trees" (fun r -> r.rdil.auxiliary)
  end

(* ------------------------------------------------------------------ *)
(* Figure 9: complete-result query performance                         *)

let complete_algorithms =
  [
    ("join", Xk_core.Engine.Join_based);
    ("stack", Xk_core.Engine.Stack_based);
    ("indexed", Xk_core.Engine.Index_based);
  ]

let mean_time_over_queries cfg ds queries run_query =
  let total = ref 0. in
  List.iter
    (fun q ->
      warm_query ds q;
      total := !total +. time_ms ~runs:cfg.runs (fun () -> run_query q))
    queries;
  !total /. float_of_int (max 1 (List.length queries))

let low_freq_buckets high = List.filter (fun b -> b * 4 < high) [ 10; 100; 1000; 10_000 ]

let fig9 cfg ds =
  if wants cfg "fig9" then begin
    let idx = Xk_core.Engine.index ds.eng in
    let rng = Xk_datagen.Rng.create cfg.seed in
    let high = Xk_workload.Workload.max_df idx in
    header
      (Printf.sprintf
         "Figure 9(a)-(d): complete ELCA results, high freq = %d, %d queries x %d runs per point"
         high cfg.queries cfg.runs);
    List.iter
      (fun k ->
        subheader (Printf.sprintf "fig9, k = %d keywords (time ms)" k);
        row
          ([ scell 10 "low freq" ]
          @ List.map (fun (n, _) -> scell 10 n) complete_algorithms);
        List.iter
          (fun low ->
            let queries =
              Xk_workload.Workload.random_queries rng idx ~k ~high ~low
                ~n:cfg.queries
            in
            let cells =
              List.map
                (fun (_, algorithm) ->
                  fcell 10
                    (mean_time_over_queries cfg ds queries (fun q ->
                         Xk_core.Engine.query ~algorithm ds.eng q)))
                complete_algorithms
            in
            row (icell 10 low :: cells))
          (low_freq_buckets high))
      [ 2; 3; 4; 5 ];
    header "Figure 9(e)-(f): equal keyword frequencies";
    List.iter
      (fun k ->
        subheader (Printf.sprintf "fig9 equal-freq, k = %d keywords (time ms)" k);
        row
          ([ scell 10 "freq" ]
          @ List.map (fun (n, _) -> scell 10 n) complete_algorithms);
        List.iter
          (fun freq ->
            let queries =
              Xk_workload.Workload.equal_freq_queries rng idx ~k ~freq
                ~n:cfg.queries
            in
            let cells =
              List.map
                (fun (_, algorithm) ->
                  fcell 10
                    (mean_time_over_queries cfg ds queries (fun q ->
                         Xk_core.Engine.query ~algorithm ds.eng q)))
                complete_algorithms
            in
            row (icell 10 freq :: cells))
          (List.filter (fun f -> f * 2 < high) [ 100; 300; 1000; 3000 ]))
      [ 2; 3 ]
  end

(* ------------------------------------------------------------------ *)
(* Figure 10: top-10 performance                                       *)

let topk_algorithms =
  [
    ("topk-join", Xk_core.Engine.Topk_join);
    ("complete", Xk_core.Engine.Complete_then_sort);
    ("RDIL", Xk_core.Engine.Rdil_baseline);
  ]

let fig10_random cfg ds =
  if wants cfg "fig10" then begin
    let idx = Xk_core.Engine.index ds.eng in
    let rng = Xk_datagen.Rng.create (cfg.seed + 1) in
    let high = Xk_workload.Workload.max_df idx in
    header
      (Printf.sprintf
         "Figure 10(a): top-10, random (low-correlation) queries, k = 2, high = %d"
         high);
    row
      ([ scell 10 "low freq" ]
      @ List.map (fun (n, _) -> scell 12 n) topk_algorithms
      @ [ scell 10 "results" ]);
    List.iter
      (fun low ->
        let queries =
          Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low
            ~n:cfg.queries
        in
        let result_count =
          List.fold_left
            (fun acc q -> acc + List.length (Xk_core.Engine.query ds.eng q))
            0 queries
          / max 1 (List.length queries)
        in
        let cells =
          List.map
            (fun (_, algorithm) ->
              fcell 12
                (mean_time_over_queries cfg ds queries (fun q ->
                     Xk_core.Engine.query_topk ~algorithm ds.eng q ~k:10)))
            topk_algorithms
        in
        row ((icell 10 low :: cells) @ [ icell 10 result_count ]))
      (low_freq_buckets high)
  end

let fig10_correlated cfg ds ~fig =
  if wants cfg "fig10" then begin
    header
      (Printf.sprintf "Figure 10(%s): top-10, correlated queries (%s)" fig
         ds.ds_name);
    row
      ([ scell 28 "query" ]
      @ List.map (fun (n, _) -> scell 12 n) topk_algorithms
      @ [ scell 10 "results" ]);
    let run_query_set label q =
      warm_query ds q;
      let result_count = List.length (Xk_core.Engine.query ds.eng q) in
      let cells =
        List.map
          (fun (_, algorithm) ->
            fcell 12
              (time_ms ~runs:cfg.runs (fun () ->
                   Xk_core.Engine.query_topk ~algorithm ds.eng q ~k:10)))
          topk_algorithms
      in
      row ((scell 28 label :: cells) @ [ icell 10 result_count ])
    in
    List.iter
      (fun q -> run_query_set ("{" ^ String.concat " " q ^ "}") q)
      ds.correlated;
    if ds.uncorrelated <> [] then begin
      Printf.printf "(frequency-matched uncorrelated controls:)\n";
      List.iter
        (fun q -> run_query_set ("{" ^ String.concat " " q ^ "}") q)
        ds.uncorrelated
    end
  end

(* ------------------------------------------------------------------ *)
(* Motivation: result-size blowup of the naive LCA semantics           *)

let motivation cfg ds =
  if wants cfg "motivation" then begin
    header
      "Motivation (Sections I, II-A): result sizes under the naive LCA semantics";
    let idx = Xk_core.Engine.index ds.eng in
    let rng = Xk_datagen.Rng.create (cfg.seed + 9) in
    row
      [ scell 4 "k"; scell 16 "combinations"; scell 14 "distinct LCAs";
        scell 10 "ELCAs"; scell 10 "SLCAs" ];
    List.iter
      (fun k ->
        let queries =
          Xk_workload.Workload.equal_freq_queries rng idx ~k ~freq:300
            ~n:(max 5 (cfg.queries / 2))
        in
        let combos = ref 0. and lcas = ref 0 and elcas = ref 0 and slcas = ref 0 in
        let m = List.length queries in
        List.iter
          (fun q ->
            let ids = Xk_index.Index.term_ids_exn idx q in
            combos := !combos +. Xk_baselines.Naive_lca.combination_count idx ids;
            lcas := !lcas + List.length (Xk_baselines.Naive_lca.lca_set idx ids);
            elcas := !elcas + List.length (Xk_core.Engine.query ds.eng q);
            slcas :=
              !slcas
              + List.length
                  (Xk_core.Engine.query ~semantics:Xk_core.Engine.Slca ds.eng q))
          queries;
        let fm = float_of_int (max 1 m) in
        row
          [ icell 4 k;
            (16, Printf.sprintf "%.2e" (!combos /. fm));
            fcell 14 (float_of_int !lcas /. fm);
            fcell 10 (float_of_int !elcas /. fm);
            fcell 10 (float_of_int !slcas /. fm) ])
      [ 2; 3; 4; 5 ]
  end

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

(* A1: the paper's tightened star-join threshold vs the classic HRJN
   bound, on the keyword top-K operator itself. *)
let ablation_threshold cfg ds =
  if wants cfg "ablations" then begin
    header
      "Ablation A1: star-join threshold (Section IV-B) - Tight vs Classic, top-10";
    row
      [ scell 28 "query"; scell 12 "tight ms"; scell 12 "classic ms";
        scell 12 "tight pulls"; scell 14 "classic pulls" ];
    let idx = Xk_core.Engine.index ds.eng in
    let damping = Xk_index.Index.damping idx in
    List.iter
      (fun q ->
        warm_query ds q;
        match
          List.map (fun w -> Xk_index.Index.term_id idx w) q
          |> List.filter_map Fun.id
        with
        | ids when List.length ids = List.length q ->
            let slists =
              Array.of_list (List.map (Xk_index.Index.score_list idx) ids)
            in
            let run threshold =
              let stats = Xk_core.Topk_keyword.new_stats () in
              let t =
                time_ms ~runs:cfg.runs (fun () ->
                    Xk_core.Topk_keyword.topk ~stats ~threshold slists damping
                      ~k:10)
              in
              (t, stats.pulled / (cfg.runs + 1))
            in
            let t_tight, p_tight = run Xk_core.Topk_keyword.Tight in
            let t_classic, p_classic = run Xk_core.Topk_keyword.Classic in
            row
              [ scell 28 ("{" ^ String.concat " " q ^ "}");
                fcell 12 t_tight; fcell 12 t_classic;
                icell 12 p_tight; icell 14 p_classic ]
        | _ -> ())
      ds.correlated
  end

(* A2: dynamic join-algorithm selection (Section III-C) vs forced plans. *)
let ablation_joinplan cfg ds =
  if wants cfg "ablations" then begin
    header "Ablation A2: join plan (Section III-C) - dynamic vs forced, ELCA";
    let idx = Xk_core.Engine.index ds.eng in
    let rng = Xk_datagen.Rng.create (cfg.seed + 2) in
    let high = Xk_workload.Workload.max_df idx in
    row
      [ scell 16 "workload"; scell 10 "dynamic"; scell 10 "merge";
        scell 10 "index" ];
    let plans =
      [
        Xk_core.Level_join.Dynamic;
        Xk_core.Level_join.Force_merge;
        Xk_core.Level_join.Force_index;
      ]
    in
    let measure name queries =
      let cells =
        List.map
          (fun plan ->
            fcell 10
              (mean_time_over_queries cfg ds queries (fun q ->
                   Xk_core.Engine.query ~plan ds.eng q)))
          plans
      in
      row (scell 16 name :: cells)
    in
    measure "skewed low=10"
      (Xk_workload.Workload.random_queries rng idx ~k:3 ~high ~low:10
         ~n:cfg.queries);
    measure "skewed low=100"
      (Xk_workload.Workload.random_queries rng idx ~k:3 ~high ~low:100
         ~n:cfg.queries);
    measure "equal freq"
      (Xk_workload.Workload.equal_freq_queries rng idx ~k:3 ~freq:(high / 4)
         ~n:(max 5 (cfg.queries / 4)))
  end

(* Section V's aside: "query execution time for the SLCA semantics is
   around the same as the ELCA semantics for any algorithm". *)
let semantics_check cfg ds =
  if wants cfg "ablations" then begin
    header "Semantics check (Section V): ELCA vs SLCA execution time";
    let idx = Xk_core.Engine.index ds.eng in
    let rng = Xk_datagen.Rng.create (cfg.seed + 4) in
    let high = Xk_workload.Workload.max_df idx in
    let queries =
      Xk_workload.Workload.random_queries rng idx ~k:3 ~high ~low:100
        ~n:cfg.queries
    in
    row [ scell 12 "algorithm"; scell 10 "ELCA ms"; scell 10 "SLCA ms" ];
    List.iter
      (fun (name, algorithm) ->
        let t semantics =
          mean_time_over_queries cfg ds queries (fun q ->
              Xk_core.Engine.query ~semantics ~algorithm ds.eng q)
        in
        row
          [ scell 12 name;
            fcell 10 (t Xk_core.Engine.Elca);
            fcell 10 (t Xk_core.Engine.Slca) ])
      complete_algorithms
  end

(* A3: gapped JDewey numbering (maintenance headroom, Section III-A) -
   index size and query time cost of reserving insertion space. *)
let ablation_gap cfg =
  if wants cfg "ablations" then begin
    header "Ablation A3: JDewey gap (Section III-A maintenance headroom)";
    let corpus =
      Xk_datagen.Dblp_gen.generate
        (Xk_datagen.Dblp_gen.scaled (cfg.scale /. 4.))
    in
    row
      [ scell 8 "gap"; scell 14 "join IL (MB)"; scell 14 "query ms" ];
    List.iter
      (fun gap ->
        let label = Xk_encoding.Labeling.label ~gap corpus.doc in
        let idx = Xk_index.Index.build label in
        let eng = Xk_core.Engine.of_index idx in
        let sizes = Xk_index.Index_sizes.report idx in
        let rng = Xk_datagen.Rng.create cfg.seed in
        let high = Xk_workload.Workload.max_df idx in
        let queries =
          Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low:100
            ~n:(max 5 (cfg.queries / 4))
        in
        let ds =
          { ds_name = "gap"; eng; correlated = []; uncorrelated = [] }
        in
        let t =
          mean_time_over_queries cfg ds queries (fun q ->
              Xk_core.Engine.query eng q)
        in
        row
          [ icell 8 gap;
            fcell 14 (mb sizes.join_based.inverted_lists);
            fcell 14 t ])
      [ 1; 4; 16; 64 ]
  end

(* ------------------------------------------------------------------ *)
(* Disk I/O: the column store's partial reads (Fig. 2, Section III-B)  *)

let disk cfg ds =
  if wants cfg "disk" then begin
    header "Disk I/O (Figure 2 / Section III-B): column-at-a-time reads";
    let idx = Xk_core.Engine.index ds.eng in
    let path = Filename.temp_file "xk_bench" ".col" in
    let t0 = now () in
    Xk_index.Jstore.write idx path;
    let store = Xk_index.Jstore.open_file path in
    Printf.printf "store written: %.2f MB in %.1fs\n"
      (mb (Xk_index.Jstore.file_size path))
      (now () -. t0);
    row
      [ scell 26 "query"; scell 12 "stored KB"; scell 12 "decoded KB";
        scell 10 "columns"; scell 12 "time ms" ];
    let run_query q =
      match List.map (Xk_index.Jstore.term_id store) q with
      | ids when List.for_all Option.is_some ids ->
          let ids = List.map Option.get ids in
          Xk_index.Jstore.reset_stats store;
          let lists = Array.of_list (List.map (Xk_index.Jstore.jlist store) ids) in
          let t0 = now () in
          let hits =
            Xk_core.Join_query.run lists (Xk_index.Index.damping idx)
              Xk_core.Join_query.Elca
          in
          let dt = (now () -. t0) *. 1000. in
          ignore hits;
          let s = Xk_index.Jstore.stats store in
          let stored =
            List.fold_left (fun a id -> a + Xk_index.Jstore.term_bytes store id) 0 ids
          in
          row
            [ scell 26 ("{" ^ String.concat " " q ^ "}");
              fcell 12 (float_of_int stored /. 1024.);
              fcell 12 (float_of_int s.bytes_decoded /. 1024.);
              icell 10 s.columns_decoded;
              fcell 12 dt ]
      | _ -> ()
    in
    (* A same-depth correlated pair (reads all its levels) vs a mix with a
       shallow keyword (skips the deep keyword's lower columns). *)
    List.iter run_query ds.correlated;
    (match ds.correlated with
    | (deep :: _) :: _ -> run_query [ deep; "1998" ]
    | _ -> ());
    Sys.remove path
  end

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (Bechamel)                                         *)

let micro cfg =
  if wants cfg "micro" then begin
    header "Micro benchmarks (Bechamel, monotonic clock)";
    let open Bechamel in
    let open Toolkit in
    (* Erased interval set vs a bitset, on the range-exclusion workload
       (the Section III-D/E representation ablation). *)
    let runs = 2000 in
    let mk_intervals () =
      Staged.stage (fun () ->
          let e = Xk_core.Erased.create () in
          for i = 0 to runs - 1 do
            let lo = i * 40 mod 65000 in
            Xk_core.Erased.add e ~lo ~hi:(lo + 32)
          done;
          let acc = ref 0 in
          for i = 0 to runs - 1 do
            let lo = i * 37 mod 65000 in
            acc := !acc + Xk_core.Erased.covered e ~lo ~hi:(lo + 64)
          done;
          !acc)
    in
    let mk_bitset () =
      Staged.stage (fun () ->
          let b = Bytes.make 65536 '\000' in
          for i = 0 to runs - 1 do
            let lo = i * 40 mod 65000 in
            Bytes.fill b lo 32 '\001'
          done;
          let acc = ref 0 in
          for i = 0 to runs - 1 do
            let lo = i * 37 mod 65000 in
            for x = lo to lo + 63 do
              if Bytes.get b x = '\001' then incr acc
            done
          done;
          !acc)
    in
    (* Sparse-large scenario: few erased ranges over a multi-million-row
       list - the realistic shape, where a bitset pays allocation and
       per-row scans while intervals stay logarithmic. *)
    let big = 8_000_000 in
    let mk_intervals_sparse () =
      Staged.stage (fun () ->
          let e = Xk_core.Erased.create () in
          for i = 0 to 199 do
            let lo = i * (big / 200) in
            Xk_core.Erased.add e ~lo ~hi:(lo + 500)
          done;
          let acc = ref 0 in
          for i = 0 to 199 do
            let lo = i * 37_717 mod (big - 4000) in
            acc := !acc + Xk_core.Erased.covered e ~lo ~hi:(lo + 4000)
          done;
          !acc)
    in
    let mk_bitset_sparse () =
      Staged.stage (fun () ->
          let b = Bytes.make big '\000' in
          for i = 0 to 199 do
            let lo = i * (big / 200) in
            Bytes.fill b lo 500 '\001'
          done;
          let acc = ref 0 in
          for i = 0 to 199 do
            let lo = i * 37_717 mod (big - 4000) in
            for x = lo to lo + 3999 do
              if Bytes.get b x = '\001' then incr acc
            done
          done;
          !acc)
    in
    let heap_test () =
      Staged.stage (fun () ->
          let h = Xk_util.Heap.create () in
          for i = 0 to 999 do
            Xk_util.Heap.push h (float_of_int ((i * 7919) mod 1000)) i
          done;
          let acc = ref 0 in
          let continue = ref true in
          while !continue do
            match Xk_util.Heap.pop h with
            | Some (_, v) -> acc := !acc + v
            | None -> continue := false
          done;
          !acc)
    in
    let codec_test () =
      let runs_arr =
        Array.init 4096 (fun i ->
            { Xk_storage.Column_codec.value = (i * 3) + 1; count = 1 + (i mod 8) })
      in
      let buf = Buffer.create 4096 in
      let (_ : Xk_storage.Column_codec.scheme) =
        Xk_storage.Column_codec.encode buf runs_arr
      in
      let data = Buffer.contents buf in
      Staged.stage (fun () ->
          Array.length
            (Xk_storage.Column_codec.decode (Xk_storage.Varint.cursor data)))
    in
    let tests =
      Test.make_grouped ~name:"micro" ~fmt:"%s %s"
        [
          Test.make ~name:"erased-intervals-dense" (mk_intervals ());
          Test.make ~name:"erased-bitset-dense" (mk_bitset ());
          Test.make ~name:"erased-intervals-sparse" (mk_intervals_sparse ());
          Test.make ~name:"erased-bitset-sparse" (mk_bitset_sparse ());
          Test.make ~name:"heap-1k" (heap_test ());
          Test.make ~name:"column-decode-4k" (codec_test ());
        ]
    in
    let benchmark () =
      let bcfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
      in
      Benchmark.all bcfg Instance.[ monotonic_clock ] tests
    in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Instance.monotonic_clock (benchmark ())
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
        | _ -> Printf.printf "%-28s (no estimate)\n" name)
      results;
    ignore cfg
  end

(* ------------------------------------------------------------------ *)

let run cfg =
  Printf.printf
    "xkeyword experiment harness: scale=%.2f queries/bucket=%d runs=%d seed=%d\n%!"
    cfg.scale cfg.queries cfg.runs cfg.seed;
  let need_corpora =
    cfg.only = []
    || List.exists (wants cfg) [ "table1"; "motivation"; "fig9"; "fig10"; "ablations"; "disk" ]
  in
  if need_corpora then begin
    let dblp = load_dblp cfg in
    let xmark = load_xmark cfg in
    table1 cfg [ dblp; xmark ];
    motivation cfg dblp;
    fig9 cfg dblp;
    fig10_random cfg dblp;
    fig10_correlated cfg dblp ~fig:"b";
    fig10_correlated cfg xmark ~fig:"c";
    ablation_threshold cfg dblp;
    ablation_joinplan cfg dblp;
    semantics_check cfg dblp;
    ablation_gap cfg;
    disk cfg dblp
  end;
  micro cfg;
  Printf.printf "\ndone.\n"

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Corpus scale factor.")

let queries =
  Arg.(
    value & opt int 20
    & info [ "queries" ] ~doc:"Random queries per bucket (paper: 40).")

let runs =
  Arg.(
    value & opt int 3 & info [ "runs" ] ~doc:"Repetitions per query (paper: 5).")

let seed = Arg.(value & opt int 2010 & info [ "seed" ] ~doc:"Workload seed.")

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Small corpora and few queries (CI smoke run).")

let only =
  Arg.(
    value & opt_all string []
    & info [ "only" ]
        ~doc:
          "Run a subset: table1, motivation, fig9, fig10, ablations, disk, micro (repeatable).")

let term =
  let make scale queries runs seed quick only =
    let cfg =
      if quick then
        { scale = scale /. 8.; queries = min queries 5; runs = 1; seed; only }
      else { scale; queries; runs; seed; only }
    in
    run cfg
  in
  Term.(const make $ scale $ queries $ runs $ seed $ quick $ only)

let cmd =
  Cmd.v
    (Cmd.info "xkeyword-bench"
       ~doc:"Regenerate the paper's tables and figures on synthetic corpora.")
    term

let () = exit (Cmd.eval cmd)
