(* Parallel-serving throughput experiment: sweep the domain-pool size
   over a generated DBLP workload against one shared engine and record
   queries/sec per domain count in BENCH_parallel.json.

     dune exec bench/bench_parallel.exe                  # defaults
     dune exec bench/bench_parallel.exe -- --scale 0.5 --queries 200

   The workload mixes complete ELCA, complete SLCA and top-10 requests
   (all join-based), mirroring a heterogeneous serving mix rather than
   the paper's one-algorithm-at-a-time timing runs.  Every sweep point
   re-checks that the parallel results are identical to sequential
   execution, so the numbers are only reported for correct runs. *)

open Bench_util

type point = {
  domains : int;
  wall_s : float;
  qps : float;
  speedup : float; (* vs the 1-domain point *)
}

let build_workload eng ~queries ~seed =
  let idx = Xk_core.Engine.index eng in
  let rng = Xk_datagen.Rng.create seed in
  let high = Xk_workload.Workload.max_df idx in
  let low = max 2 (high / 20) in
  let qs = Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low ~n:queries in
  List.concat_map
    (fun q ->
      [
        Xk_core.Engine.complete_request ~semantics:Elca q;
        Xk_core.Engine.complete_request ~semantics:Slca q;
        Xk_core.Engine.topk_request ~semantics:Elca ~k:10 q;
      ])
    qs

let same_results a b =
  List.for_all2
    (fun xs ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
             x.node = y.node && x.score = y.score)
           xs ys)
    a b

(* Outcome counters accumulated across the whole sweep.  On a clean run
   (no deadlines, no faults, no admission bound) everything lands in
   [completed] and the rest stay zero — the JSON records that. *)
type totals = {
  mutable completed : int;
  mutable partials : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable failed : int;
}

let run_sweep eng reqs ~runs ~sweep =
  let reference = Xk_core.Engine.query_batch eng reqs in
  let n = List.length reqs in
  let totals =
    { completed = 0; partials = 0; timeouts = 0; rejected = 0; failed = 0 }
  in
  let points =
    List.map
      (fun domains ->
        let svc = Xk_exec.Query_service.create ~domains eng in
        (* One warmup run, then [runs] timed runs. *)
        let first = Xk_exec.Query_service.exec_batch svc reqs in
        let all_ok =
          List.for_all
            (function Xk_exec.Query_service.Ok _ -> true | _ -> false)
            first
        in
        if
          (not all_ok)
          || not (same_results reference (List.map Xk_exec.Query_service.hits first))
        then
          failwith
            (Printf.sprintf "domains=%d: parallel results differ from sequential"
               domains);
        let t0 = now () in
        for _ = 1 to runs do
          ignore (Xk_exec.Query_service.exec_batch svc reqs)
        done;
        let wall_s = (now () -. t0) /. float_of_int runs in
        let st = Xk_exec.Query_service.stats svc in
        totals.completed <- totals.completed + st.completed;
        totals.partials <- totals.partials + st.partials;
        totals.timeouts <- totals.timeouts + st.timeouts;
        totals.rejected <- totals.rejected + st.rejected;
        totals.failed <- totals.failed + st.failed;
        Xk_exec.Query_service.shutdown svc;
        let qps = float_of_int n /. wall_s in
        Printf.printf "  domains=%d: %.3fs/batch, %.1f q/s\n%!" domains wall_s
          qps;
        { domains; wall_s; qps; speedup = 0. })
      sweep
  in
  let base =
    match points with [] -> 1. | p :: _ -> p.qps
  in
  (List.map (fun p -> { p with speedup = p.qps /. base }) points, totals)

let emit_json out ~scale ~queries ~runs ~cores ~nodes ~terms points totals cache =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"domain-pool throughput sweep\",\n";
  p "  \"corpus\": {\"dataset\": \"dblp\", \"scale\": %g, \"nodes\": %d, \"terms\": %d},\n"
    scale nodes terms;
  p "  \"workload\": {\"queries\": %d, \"requests_per_batch\": %d, \"runs\": %d},\n"
    queries (queries * 3) runs;
  p "  \"host_cores\": %d,\n" cores;
  p "  \"single_core_warning\": %b,\n" (cores <= 1);
  p "  \"note\": \"speedup is relative to the 1-domain point; on a single-core host (single_core_warning) the sweep degenerates to overhead measurement\",\n";
  p "  \"sweep\": [\n";
  List.iteri
    (fun i pt ->
      p
        "    {\"domains\": %d, \"batch_wall_s\": %.4f, \"qps\": %.1f, \"speedup\": %.2f}%s\n"
        pt.domains pt.wall_s pt.qps pt.speedup
        (if i = List.length points - 1 then "" else ","))
    points;
  p "  ],\n";
  p
    "  \"outcomes\": {\"completed\": %d, \"partials\": %d, \"timeouts\": %d, \"rejected\": %d, \"failed\": %d},\n"
    totals.completed totals.partials totals.timeouts totals.rejected
    totals.failed;
  let c : Xk_index.Shard_cache.stats = cache in
  p
    "  \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"entries\": %d, \"capacity\": %d}\n"
    c.hits c.misses c.evictions c.entries c.capacity;
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

let run scale queries runs seed out =
  header "Parallel serving: domain sweep (DBLP workload)";
  let t0 = now () in
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Xk_index.Index.build label in
  let eng = Xk_core.Engine.of_index idx in
  let nodes = Xk_encoding.Labeling.node_count label in
  let terms = Xk_index.Index.term_count idx in
  Printf.printf "corpus: %d nodes, %d terms (%.1fs)\n%!" nodes terms (now () -. t0);
  let reqs = build_workload eng ~queries ~seed in
  Printf.printf "workload: %d requests/batch (ELCA + SLCA + top-10 per query)\n%!"
    (List.length reqs);
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d recommended domain(s)\n%!" cores;
  let points, totals = run_sweep eng reqs ~runs ~sweep:[ 1; 2; 4; 8 ] in
  emit_json out ~scale ~queries ~runs ~cores ~nodes ~terms points totals
    (Xk_index.Index.cache_stats idx)

open Cmdliner

let scale =
  Arg.(value & opt float 0.2 & info [ "scale" ] ~doc:"DBLP corpus scale factor.")

let queries =
  Arg.(
    value & opt int 100
    & info [ "queries" ] ~doc:"Keyword queries per batch (3 requests each).")

let runs =
  Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Timed runs per sweep point.")

let seed = Arg.(value & opt int 2010 & info [ "seed" ] ~doc:"Workload seed.")

let out =
  Arg.(
    value
    & opt string "BENCH_parallel.json"
    & info [ "out" ] ~doc:"JSON output path.")

let cmd =
  Cmd.v
    (Cmd.info "bench_parallel"
       ~doc:"Throughput sweep of the parallel query service over domain counts.")
    Term.(const run $ scale $ queries $ runs $ seed $ out)

let () = exit (Cmd.eval cmd)
