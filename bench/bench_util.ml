(* Timing and reporting helpers for the experiment harness. *)

let now () = Unix.gettimeofday ()

(* Mean wall-clock milliseconds of [runs] executions after one warmup run
   (the paper reports the average of queries "executed 5 times ... on hot
   cache"). *)
let time_ms ~runs f =
  ignore (f ());
  let t0 = now () in
  for _ = 1 to runs do
    ignore (f ())
  done;
  (now () -. t0) *. 1000. /. float_of_int runs

let mb bytes = float_of_int bytes /. 1024. /. 1024.

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader title = Printf.printf "\n--- %s ---\n%!" title

(* Fixed-width row printing. *)
let row cells =
  List.iter (fun (w, s) -> Printf.printf "%*s" w s) cells;
  print_newline ()

let fcell w f = (w, Printf.sprintf "%.2f" f)
let scell w s = (w, s)
let icell w i = (w, string_of_int i)
