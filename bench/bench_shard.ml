(* Sharded scatter/gather experiment: sweep the shard count over a
   generated DBLP workload and record per-point latency, throughput and
   outcome counters in BENCH_shard.json, against a sequential
   single-index baseline.

     dune exec bench/bench_shard.exe                    # defaults
     dune exec bench/bench_shard.exe -- --shards 1,2,4,8 --scale 0.5
     dune exec bench/bench_shard.exe -- --check         # parity gate only

   The workload mixes complete ELCA, complete SLCA and top-10 requests
   (all join-based), as in bench_parallel.  Every sweep point first
   verifies the gathered results against sequential execution on the
   unsharded index: complete requests must match node-for-node, top-K
   requests score-for-score (at equal scores the single-index top-K
   heap's emission order is unspecified).  On a single-core host the
   sweep measures scatter/gather overhead, not speedup — the JSON says
   so via single_core_warning. *)

open Bench_util

type point = {
  shards : int;
  domains : int;
  wall_s : float;
  qps : float;
  latency_ms : float;  (* mean single-request scatter/gather latency *)
  speedup : float;  (* vs the 1-shard point *)
  stats : Xk_exec.Shard_exec.stats;
}

let build_workload idx ~queries ~seed =
  let rng = Xk_datagen.Rng.create seed in
  let high = Xk_workload.Workload.max_df idx in
  let low = max 2 (high / 20) in
  let qs = Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low ~n:queries in
  List.concat_map
    (fun q ->
      [
        Xk_core.Engine.complete_request ~semantics:Elca q;
        Xk_core.Engine.complete_request ~semantics:Slca q;
        Xk_core.Engine.topk_request ~semantics:Elca ~k:10 q;
      ])
    qs

let same_hits (req : Xk_core.Engine.request) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.score = y.score
         &&
         match req.req_mode with
         | Xk_core.Engine.Topk _ -> true
         | Xk_core.Engine.Complete _ -> x.node = y.node)
       a b

let verify_parity ~shards reqs reference outcomes =
  let rec check i = function
    | [], [], [] -> ()
    | r :: rs, a :: sq, o :: os ->
        (match o with
        | Xk_exec.Query_service.Ok b when same_hits r a b -> ()
        | Xk_exec.Query_service.Ok _ ->
            failwith
              (Printf.sprintf
                 "shards=%d: request %d differs from sequential execution"
                 shards i)
        | _ ->
            failwith
              (Printf.sprintf
                 "shards=%d: request %d did not complete (no deadline given)"
                 shards i));
        check (i + 1) (rs, sq, os)
    | _ -> failwith "result count mismatch"
  in
  check 0 (reqs, reference, outcomes)

let emit_json out ~scale ~queries ~runs ~cores ~nodes ~terms ~replicas
    ~seq_wall ~seq_qps points =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"sharded scatter/gather sweep\",\n";
  p
    "  \"corpus\": {\"dataset\": \"dblp\", \"scale\": %g, \"nodes\": %d, \"terms\": %d},\n"
    scale nodes terms;
  p
    "  \"workload\": {\"queries\": %d, \"requests_per_batch\": %d, \"runs\": %d},\n"
    queries (queries * 3) runs;
  p "  \"host_cores\": %d,\n" cores;
  p "  \"replicas_per_shard\": %d,\n" replicas;
  p "  \"single_core_warning\": %b,\n" (cores <= 1);
  p
    "  \"note\": \"every point is parity-checked against sequential \
     single-index execution before timing; speedup is relative to the \
     1-shard point; on a single-core host (single_core_warning) the sweep \
     measures scatter/gather overhead, not speedup\",\n";
  p "  \"sequential\": {\"batch_wall_s\": %.4f, \"qps\": %.1f},\n" seq_wall
    seq_qps;
  p "  \"sweep\": [\n";
  List.iteri
    (fun i pt ->
      let st = pt.stats in
      p
        "    {\"shards\": %d, \"domains\": %d, \"batch_wall_s\": %.4f, \
         \"qps\": %.1f, \"mean_latency_ms\": %.3f, \"speedup\": %.2f,\n"
        pt.shards pt.domains pt.wall_s pt.qps pt.latency_ms pt.speedup;
      p
        "     \"outcomes\": {\"completed\": %d, \"partials\": %d, \
         \"degraded\": %d, \"timeouts\": %d, \"rejected\": %d, \
         \"failed\": %d},\n"
        st.completed st.partials st.degraded st.timeouts st.rejected st.failed;
      p
        "     \"resilience\": {\"failovers\": %d, \"hedges\": %d, \
         \"hedge_wins\": %d},\n"
        st.failovers st.hedges st.hedge_wins;
      let c = st.cache in
      p
        "     \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \
         \"entries\": %d, \"capacity\": %d}}%s\n"
        c.hits c.misses c.evictions c.entries c.capacity
        (if i = List.length points - 1 then "" else ","))
    points;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

let run scale queries runs seed sweep replicas hedge_ms check_only out =
  header "Sharded serving: shard-count sweep (DBLP workload)";
  let t0 = now () in
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Xk_index.Index.build label in
  let eng = Xk_core.Engine.of_index idx in
  let nodes = Xk_encoding.Labeling.node_count label in
  let terms = Xk_index.Index.term_count idx in
  Printf.printf "corpus: %d nodes, %d terms (%.1fs)\n%!" nodes terms
    (now () -. t0);
  let reqs = build_workload idx ~queries ~seed in
  let n = List.length reqs in
  Printf.printf "workload: %d requests/batch (ELCA + SLCA + top-10 per query)\n%!"
    n;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d recommended domain(s)%s\n%!" cores
    (if cores <= 1 then " — single core, expect overhead, not speedup" else "");
  let reference = Xk_core.Engine.query_batch eng reqs in
  let seq_wall =
    let t0 = now () in
    for _ = 1 to runs do
      ignore (Xk_core.Engine.query_batch eng reqs)
    done;
    (now () -. t0) /. float_of_int runs
  in
  let seq_qps = float_of_int n /. seq_wall in
  Printf.printf "sequential baseline: %.3fs/batch, %.1f q/s\n%!" seq_wall
    seq_qps;
  let points =
    List.map
      (fun shards ->
        let sharded = Xk_index.Sharding.partition ~shards corpus.doc in
        let sx =
          Xk_exec.Shard_exec.create ~replicas ?hedge_delay_ms:hedge_ms sharded
        in
        (* Warmup run doubles as the parity gate. *)
        let first = Xk_exec.Shard_exec.exec_batch sx reqs in
        verify_parity ~shards reqs reference first;
        Printf.printf "  shards=%d: parity verified (%d requests)\n%!" shards n;
        let pt =
          if check_only then
            {
              shards;
              domains = Xk_exec.Shard_exec.domains sx;
              wall_s = 0.;
              qps = 0.;
              latency_ms = 0.;
              speedup = 0.;
              stats = Xk_exec.Shard_exec.stats sx;
            }
          else begin
            let t0 = now () in
            for _ = 1 to runs do
              ignore (Xk_exec.Shard_exec.exec_batch sx reqs)
            done;
            let wall_s = (now () -. t0) /. float_of_int runs in
            let sample = List.filteri (fun i _ -> i < 30) reqs in
            let l0 = now () in
            List.iter (fun r -> ignore (Xk_exec.Shard_exec.exec sx r)) sample;
            let latency_ms =
              (now () -. l0) *. 1000. /. float_of_int (List.length sample)
            in
            let qps = float_of_int n /. wall_s in
            Printf.printf
              "  shards=%d: %.3fs/batch, %.1f q/s, %.3f ms/query scatter/gather\n%!"
              shards wall_s qps latency_ms;
            {
              shards;
              domains = Xk_exec.Shard_exec.domains sx;
              wall_s;
              qps;
              latency_ms;
              speedup = 0.;
              stats = Xk_exec.Shard_exec.stats sx;
            }
          end
        in
        Xk_exec.Shard_exec.shutdown sx;
        pt)
      sweep
  in
  if check_only then
    Printf.printf "parity verified for shard counts %s\n"
      (String.concat "," (List.map string_of_int sweep))
  else begin
    let base = match points with [] -> 1. | p :: _ -> p.qps in
    let points = List.map (fun p -> { p with speedup = p.qps /. base }) points in
    emit_json out ~scale ~queries ~runs ~cores ~nodes ~terms ~replicas
      ~seq_wall ~seq_qps points
  end

open Cmdliner

let scale =
  Arg.(value & opt float 0.2 & info [ "scale" ] ~doc:"DBLP corpus scale factor.")

let queries =
  Arg.(
    value & opt int 100
    & info [ "queries" ] ~doc:"Keyword queries per batch (3 requests each).")

let runs =
  Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Timed runs per sweep point.")

let seed = Arg.(value & opt int 2010 & info [ "seed" ] ~doc:"Workload seed.")

let sweep =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4 ]
    & info [ "shards" ] ~doc:"Comma-separated shard counts to sweep.")

let replicas =
  Arg.(
    value & opt int 1
    & info [ "replicas" ]
        ~doc:
          "Engine replicas per shard; the sweep then exercises the \
           replicated routing path and its failover/hedge counters.")

let hedge_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "hedge-ms" ]
        ~doc:"Hedge a shard attempt on the next replica after this delay.")

let check_only =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify sharded/sequential parity for every shard count and \
           exit without timing (no JSON written).")

let out =
  Arg.(
    value
    & opt string "BENCH_shard.json"
    & info [ "out" ] ~doc:"JSON output path.")

let cmd =
  Cmd.v
    (Cmd.info "bench_shard"
       ~doc:
         "Latency/throughput sweep of sharded scatter/gather execution over \
          shard counts.")
    Term.(
      const run $ scale $ queries $ runs $ seed $ sweep $ replicas $ hedge_ms
      $ check_only $ out)

let () = exit (Cmd.eval cmd)
