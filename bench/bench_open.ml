(* Segment open-latency experiment: the v2 channel loader (read and
   decode the whole varint stream eagerly) against the v3 zero-copy
   loader (mmap, verify the header/directory/terms, defer every row
   decode to first access).  For each corpus scale the harness saves
   the same index in both formats and measures

     cold open        - the first [Index_io.load_result] of the file in
                        this process
     warm open        - the mean of repeated reopens
     first query      - one top-10 query on a freshly opened segment,
                        which on the mmap path pays the lazy decode of
                        exactly the queried terms

   and records them in BENCH_open.json.  Every point is parity-gated
   first: the three engines (fresh build, channel reload, mmap reload)
   must return bit-identical hits for the probe queries.

     dune exec bench/bench_open.exe                     # defaults
     dune exec bench/bench_open.exe -- --scales 0.2,1.0 --opens 10
     dune exec bench/bench_open.exe -- --check          # parity + floor gate

   The OS page cache stays warm throughout (both files were just
   written), so the measured gap is decode work only - a lower bound on
   the true cold gap, where the channel loader must additionally fault
   in every byte it decodes while the mmap loader faults in pages on
   first access. *)

open Bench_util

type fmt_point = {
  bytes : int;
  cold_ms : float;
  warm_ms : float;
  first_query_ms : float;
}

type point = {
  scale : float;
  nodes : int;
  terms : int;
  rows : int;
  chan : fmt_point;
  map : fmt_point;
  cold_speedup : float;
}

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xk_bench_open_%d_%s" (Unix.getpid ()) name)

let load label path =
  match Xk_index.Index_io.load_result label path with
  | Ok idx -> idx
  | Error e ->
      failwith
        (Printf.sprintf "load %s: %s" path
           (Xk_index.Index_io.load_error_message e))

let same_hits a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Xk_baselines.Hit.t) (y : Xk_baselines.Hit.t) ->
         x.node = y.node && x.score = y.score)
       a b

(* Bit-identical results across all three load paths, for every probe
   query, in both complete and top-K modes. *)
let verify_parity ~fresh ~chan ~map queries =
  let engines =
    [
      ("fresh", Xk_core.Engine.of_index fresh);
      ("channel", Xk_core.Engine.of_index chan);
      ("mmap", Xk_core.Engine.of_index map);
    ]
  in
  let reference = List.assoc "fresh" engines in
  List.iteri
    (fun i words ->
      let want = Xk_core.Engine.query reference words in
      let want_k = Xk_core.Engine.query_topk reference words ~k:10 in
      List.iter
        (fun (name, eng) ->
          if not (same_hits want (Xk_core.Engine.query eng words)) then
            failwith
              (Printf.sprintf "parity: query %d differs on the %s path" i name);
          if not (same_hits want_k (Xk_core.Engine.query_topk eng words ~k:10))
          then
            failwith
              (Printf.sprintf "parity: top-10 %d differs on the %s path" i name))
        engines)
    queries

let measure_fmt ~label ~path ~words ~opens =
  let bytes = Xk_index.Index_io.file_size path in
  let t0 = now () in
  let first = load label path in
  let cold_ms = (now () -. t0) *. 1000. in
  let tq = now () in
  let eng = Xk_core.Engine.of_index first in
  ignore (Xk_core.Engine.query_topk eng words ~k:10);
  let first_query_ms = (now () -. tq) *. 1000. in
  let warm_ms = time_ms ~runs:opens (fun () -> load label path) in
  { bytes; cold_ms; warm_ms; first_query_ms }

let sweep_point ~opens ~seed scale =
  let t0 = now () in
  let corpus = Xk_datagen.Dblp_gen.generate (Xk_datagen.Dblp_gen.scaled scale) in
  let label = Xk_encoding.Labeling.label corpus.doc in
  let idx = Xk_index.Index.build label in
  let nodes = Xk_encoding.Labeling.node_count label in
  let terms = Xk_index.Index.term_count idx in
  let rows =
    let n = ref 0 in
    for id = 0 to terms - 1 do
      n := !n + Array.length (fst (Xk_index.Index.raw_rows idx id))
    done;
    !n
  in
  Printf.printf "scale %g: %d nodes, %d terms, %d rows (built in %.1fs)\n%!"
    scale nodes terms rows (now () -. t0);
  let p2 = tmp (Printf.sprintf "%g.v2.seg" scale) in
  let p3 = tmp (Printf.sprintf "%g.v3.seg" scale) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p2; p3 ])
    (fun () ->
      Xk_index.Index_io.save_v2 idx p2;
      Xk_index.Index_io.save idx p3;
      assert (Xk_index.Index_io.format_version p2 = Some 2);
      assert (Xk_index.Index_io.format_version p3 = Some 3);
      let rng = Xk_datagen.Rng.create seed in
      let high = Xk_workload.Workload.max_df idx in
      let low = max 2 (high / 20) in
      let queries =
        Xk_workload.Workload.random_queries rng idx ~k:2 ~high ~low ~n:5
      in
      verify_parity ~fresh:idx ~chan:(load label p2) ~map:(load label p3)
        queries;
      Printf.printf "  parity verified on %d probe queries\n%!"
        (List.length queries);
      let words = List.hd queries in
      let chan = measure_fmt ~label ~path:p2 ~words ~opens in
      let map = measure_fmt ~label ~path:p3 ~words ~opens in
      let cold_speedup = chan.cold_ms /. map.cold_ms in
      Printf.printf
        "  channel: %5.1f MB, cold %8.2f ms, warm %8.2f ms, first query %6.2f \
         ms\n\
        \  mmap:    %5.1f MB, cold %8.2f ms, warm %8.2f ms, first query %6.2f \
         ms\n\
        \  cold-open speedup: %.1fx\n\
         %!"
        (mb chan.bytes) chan.cold_ms chan.warm_ms chan.first_query_ms
        (mb map.bytes) map.cold_ms map.warm_ms map.first_query_ms cold_speedup;
      { scale; nodes; terms; rows; chan; map; cold_speedup })

let emit_json out ~opens ~required points =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"segment open latency: channel (v2) vs mmap (v3)\",\n";
  p "  \"opens_per_warm_mean\": %d,\n" opens;
  p "  \"required_cold_speedup\": %.1f,\n" required;
  p
    "  \"note\": \"page cache warm for both formats (files just written), so \
     the gap measures decode work only - a lower bound on the true cold gap; \
     parity is verified before timing: all three load paths return \
     bit-identical hits\",\n";
  p "  \"sweep\": [\n";
  List.iteri
    (fun i pt ->
      let fmt name (f : fmt_point) last =
        p
          "     \"%s\": {\"bytes\": %d, \"cold_open_ms\": %.3f, \
           \"warm_open_ms\": %.3f, \"first_query_ms\": %.3f}%s\n"
          name f.bytes f.cold_ms f.warm_ms f.first_query_ms
          (if last then "" else ",")
      in
      p
        "    {\"scale\": %g, \"nodes\": %d, \"terms\": %d, \"rows\": %d, \
         \"cold_speedup\": %.2f,\n"
        pt.scale pt.nodes pt.terms pt.rows pt.cold_speedup;
      fmt "channel" pt.chan false;
      fmt "mmap" pt.map true;
      p "    }%s\n" (if i = List.length points - 1 then "" else ","))
    points;
  p "  ],\n";
  let largest = List.nth points (List.length points - 1) in
  p "  \"largest\": {\"scale\": %g, \"cold_speedup\": %.2f, \"passed\": %b}\n"
    largest.scale largest.cold_speedup
    (largest.cold_speedup >= required);
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

let run scales opens seed required check_only out =
  header "Segment open latency: channel (v2) vs zero-copy mmap (v3)";
  let scales = List.sort compare scales in
  let points = List.map (sweep_point ~opens ~seed) scales in
  if check_only then begin
    (* The parity gate already ran inside every sweep point; the floor
       here is deliberately below [required] so CI stays stable on tiny
       corpora and slow runners - the full run still records whether the
       largest point clears the real bar. *)
    (* 1.5x, not the sweep's 10x: the check runs on tiny corpora where
       a single GC pause can halve a millisecond-scale ratio, and the
       cold open is by nature a one-shot measurement. *)
    let floor = 1.5 in
    List.iter
      (fun pt ->
        if pt.cold_speedup < floor then
          failwith
            (Printf.sprintf
               "scale %g: mmap cold open only %.1fx faster than channel \
                (floor %.1fx)"
               pt.scale pt.cold_speedup floor))
      points;
    Printf.printf "parity and cold-open floor (%.1fx) verified for scales %s\n"
      floor
      (String.concat "," (List.map (fun p -> string_of_float p.scale) points))
  end
  else emit_json out ~opens ~required points

open Cmdliner

let scales =
  Arg.(
    value
    & opt (list float) [ 0.2; 1.0; 8.0 ]
    & info [ "scales" ]
        ~doc:
          "Comma-separated DBLP corpus scale factors.  The generator's \
           vocabulary saturates past scale 1, so larger scales grow the \
           posting rows but not the dictionary - the regime the zero-copy \
           open is built for.")

let opens =
  Arg.(
    value & opt int 5
    & info [ "opens" ] ~doc:"Reopens averaged into the warm-open mean.")

let seed = Arg.(value & opt int 2010 & info [ "seed" ] ~doc:"Probe-query seed.")

let required =
  Arg.(
    value & opt float 10.0
    & info [ "required-speedup" ]
        ~doc:
          "Cold-open speedup the largest sweep point must reach for the JSON \
           to record passed=true.")

let check_only =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify load-path parity and a conservative cold-open floor for \
           every scale, then exit without writing JSON.")

let out =
  Arg.(
    value
    & opt string "BENCH_open.json"
    & info [ "out" ] ~doc:"JSON output path.")

let cmd =
  Cmd.v
    (Cmd.info "bench_open"
       ~doc:"Cold/warm segment-open latency, channel loader vs mmap loader.")
    Term.(const run $ scales $ opens $ seed $ required $ check_only $ out)

let () = exit (Cmd.eval cmd)
