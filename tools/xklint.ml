(* xklint - project-specific static analysis for the concurrency, budget
   and error-discipline invariants (see DESIGN.md "Mechanized
   invariants").  Usage:

     dune exec tools/xklint -- [options] [PATH...]

   Paths default to [lib].  Findings not covered by [xklint.config]
   (curated allowlist) or [xklint.baseline] (grandfathered findings) are
   printed as [file:line severity rule message] and make the exit status
   non-zero, which is how the CI lint job gates regressions. *)

open Xklint_lib

let usage =
  "xklint [--config FILE] [--baseline FILE] [--update-baseline] \
   [--no-baseline] [PATH...]"

let () =
  let config_file = ref "xklint.config" in
  let baseline_file = ref "xklint.baseline" in
  let update_baseline = ref false in
  let no_baseline = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--config",
        Arg.Set_string config_file,
        "FILE allowlist file (default: xklint.config)" );
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE baseline file (default: xklint.baseline)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline from the current findings and exit" );
      ( "--no-baseline",
        Arg.Set no_baseline,
        " ignore the baseline: report every finding as new" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then (
        Printf.eprintf "xklint: no such path %s\n" p;
        exit 2))
    paths;
  let config =
    match Lint_config.of_file !config_file with
    | Ok c -> c
    | Error msg ->
        Printf.eprintf "xklint: bad config %s: %s\n" !config_file msg;
        exit 2
  in
  let files, findings = Lint_engine.lint_paths config paths in
  if !update_baseline then begin
    Lint_baseline.save !baseline_file findings;
    Printf.printf "xklint: wrote %d finding(s) to %s\n" (List.length findings)
      !baseline_file;
    exit 0
  end;
  let baseline =
    if !no_baseline then Lint_baseline.empty ()
    else Lint_baseline.of_file !baseline_file
  in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline findings
  in
  List.iter (fun f -> print_endline (Lint_finding.to_string f)) fresh;
  List.iter
    (fun k ->
      Printf.eprintf
        "xklint: stale baseline entry (fixed? regenerate the baseline): %s\n"
        (String.map (fun c -> if c = '\t' then ' ' else c) k))
    stale;
  Printf.printf "xklint: %d file(s), %d finding(s): %d new, %d baselined, %d stale\n"
    files (List.length findings) (List.length fresh) baselined
    (List.length stale);
  exit (if fresh = [] then 0 else 1)
