(* xklint - project-specific static analysis for the concurrency, budget
   and error-discipline invariants (see DESIGN.md "Mechanized
   invariants" and "Whole-program invariants").  Usage:

     dune exec tools/xklint -- [options] [PATH...]

   Paths default to [lib bin tools] - the whole program the call-graph
   passes analyze.  Findings not covered by [xklint.config] (curated
   allowlist) or [xklint.baseline] (grandfathered findings) are printed
   as [file:line severity rule message] (with their interprocedural
   trace indented below) and make the exit status non-zero, which is
   how the CI lint job gates regressions. *)

open Xklint_lib

let version = "2.0"

let usage =
  "xklint [--config FILE] [--baseline FILE] [--update-baseline] \
   [--no-baseline] [--format text|sarif] [--sarif FILE] [--graph dot] \
   [--stats] [PATH...]"

let () =
  let config_file = ref "xklint.config" in
  let baseline_file = ref "xklint.baseline" in
  let update_baseline = ref false in
  let no_baseline = ref false in
  let format = ref "text" in
  let sarif_file = ref "" in
  let graph_format = ref "" in
  let stats = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--config",
        Arg.Set_string config_file,
        "FILE allowlist file (default: xklint.config)" );
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE baseline file (default: xklint.baseline)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline from the current findings and exit" );
      ( "--no-baseline",
        Arg.Set no_baseline,
        " ignore the baseline: report every finding as new" );
      ( "--format",
        Arg.Set_string format,
        "FMT output format for new findings: text (default) or sarif" );
      ( "--sarif",
        Arg.Set_string sarif_file,
        "FILE also write all findings as SARIF 2.1.0 to FILE" );
      ( "--graph",
        Arg.Set_string graph_format,
        "FMT dump the cross-module call graph (dot) to stdout and exit" );
      ("--stats", Arg.Set stats, " print an analysis-cost summary line");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "tools" ] | ps -> ps
  in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "xklint: no such path %s\n" p;
        exit 2
      end)
    paths;
  let config =
    match Lint_config.of_file !config_file with
    | Ok c -> c
    | Error msg ->
        Printf.eprintf "xklint: bad config %s: %s\n" !config_file msg;
        exit 2
  in
  let t0 = Unix.gettimeofday () in
  let { Lint_engine.files; graph; findings } =
    Lint_engine.lint_paths config paths
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  if !graph_format <> "" then begin
    (match !graph_format with
    | "dot" -> print_string (Lint_callgraph.to_dot graph)
    | fmt ->
        Printf.eprintf "xklint: unknown graph format %s (try: dot)\n" fmt;
        exit 2);
    exit 0
  end;
  if !sarif_file <> "" then begin
    let oc = open_out_bin !sarif_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Lint_sarif.to_string ~tool_version:version findings))
  end;
  if !update_baseline then begin
    Lint_baseline.save !baseline_file findings;
    Printf.printf "xklint: wrote %d finding(s) to %s\n" (List.length findings)
      !baseline_file;
    exit 0
  end;
  let baseline =
    if !no_baseline then Lint_baseline.empty ()
    else Lint_baseline.of_file !baseline_file
  in
  let { Lint_baseline.fresh; baselined; stale } =
    Lint_baseline.filter baseline findings
  in
  (match !format with
  | "text" -> List.iter (fun f -> print_endline (Lint_finding.to_string f)) fresh
  | "sarif" -> print_endline (Lint_sarif.to_string ~tool_version:version fresh)
  | fmt ->
      Printf.eprintf "xklint: unknown format %s (try: text, sarif)\n" fmt;
      exit 2);
  List.iter
    (fun k ->
      Printf.eprintf
        "xklint: stale baseline entry (fixed? regenerate the baseline): %s\n"
        (String.map (fun c -> if c = '\t' then ' ' else c) k))
    stale;
  if !stats then begin
    let per_rule = Hashtbl.create 8 in
    List.iter
      (fun (f : Lint_finding.t) ->
        Hashtbl.replace per_rule f.rule
          (1 + Option.value (Hashtbl.find_opt per_rule f.rule) ~default:0))
      findings;
    let rules =
      Hashtbl.fold (fun r n acc -> (r, n) :: acc) per_rule []
      |> List.sort compare
      |> List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n)
    in
    Printf.printf
      "xklint: stats: files=%d nodes=%d edges=%d findings=[%s] wall=%.3fs\n"
      files
      (Lint_callgraph.n_defs graph)
      (Lint_callgraph.n_edges graph)
      (String.concat " " rules) elapsed
  end;
  Printf.printf
    "xklint: %d file(s), %d finding(s): %d new, %d baselined, %d stale\n" files
    (List.length findings) (List.length fresh) baselined (List.length stale);
  exit (if fresh = [] then 0 else 1)
