let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Forward slashes, no leading "./": paths printed in findings and
   stored in the baseline look the same on every host and however the
   tool was invoked. *)
let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.starts_with ~prefix:"./" p then
    String.sub p 2 (String.length p - 2)
  else p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      In_channel.input_all ic)
