(* Minimal SARIF 2.1.0 output, hand-rolled (no JSON dependency in the
   toolchain): one run, one rule descriptor per distinct rule id, one
   result per finding, with the interprocedural trace rendered as
   related locations. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let location ~file ~line =
  Printf.sprintf
    "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":{\"startLine\":%d}}}"
    (str file) (max 1 line)

let result (f : Lint_finding.t) =
  let level =
    match f.severity with Error -> "error" | Warning -> "warning"
  in
  let related =
    match f.trace with
    | [] -> ""
    | frames ->
        let frame (file, line, note) =
          Printf.sprintf
            "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":{\"startLine\":%d}},\"message\":{\"text\":%s}}"
            (str file) (max 1 line) (str note)
        in
        Printf.sprintf ",\"relatedLocations\":[%s]"
          (String.concat "," (List.map frame frames))
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[%s]%s}"
    (str f.rule) (str level) (str f.msg)
    (location ~file:f.file ~line:f.line)
    related

let rule_descriptor id = Printf.sprintf "{\"id\":%s}" (str id)

let to_string ~tool_version findings =
  let rules =
    List.map (fun (f : Lint_finding.t) -> f.rule) findings
    |> List.sort_uniq String.compare
  in
  String.concat ""
    [
      "{\"version\":\"2.1.0\",";
      "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
      "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"xklint\",";
      Printf.sprintf "\"version\":%s," (str tool_version);
      Printf.sprintf "\"rules\":[%s]}},"
        (String.concat "," (List.map rule_descriptor rules));
      Printf.sprintf "\"results\":[%s]}]}"
        (String.concat "," (List.map result findings));
    ]
