(* The committed baseline ([xklint.baseline]) grandfathers findings so
   the tool can be adopted before every last violation is fixed: a
   finding whose [file * rule * message] key appears in the baseline is
   reported as baselined, not new, and does not fail the run.  Keys are
   counted, so two identical violations in one file need two entries.

   Format: one finding per line, [file<TAB>rule<TAB>message], [#]
   comments and blank lines ignored. *)

type t = (string, int) Hashtbl.t

let empty () : t = Hashtbl.create 16

let of_string src : t =
  let t = empty () in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && not (String.starts_with ~prefix:"#" line) then
           Hashtbl.replace t line
             (1 + Option.value (Hashtbl.find_opt t line) ~default:0));
  t

let of_file path =
  if Sys.file_exists path then of_string (Lint_util.read_file path)
  else empty ()

let header =
  "# xklint baseline: grandfathered findings, one per line\n\
   # (file<TAB>rule<TAB>message).  Regenerate with\n\
   #   dune exec tools/xklint -- --update-baseline <paths>\n\
   # after deliberately accepting a finding; prefer fixing it.\n"

let to_string findings =
  let keys = List.map Lint_finding.key findings in
  let body = List.sort String.compare keys |> List.map (fun k -> k ^ "\n") in
  header ^ String.concat "" body

let save path findings =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string findings))

type verdict = {
  fresh : Lint_finding.t list;  (* not in the baseline: fail the run *)
  baselined : int;              (* matched a baseline entry *)
  stale : string list;          (* baseline entries nothing matched *)
}

let filter (t : t) findings =
  let remaining = Hashtbl.copy t in
  let fresh =
    List.filter
      (fun f ->
        let k = Lint_finding.key f in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
            Hashtbl.replace remaining k (n - 1);
            false
        | _ -> true)
      (List.sort Lint_finding.compare findings)
  in
  let stale =
    Hashtbl.fold
      (fun k n acc -> if n > 0 then List.init n (fun _ -> k) @ acc else acc)
      remaining []
    |> List.sort String.compare
  in
  { fresh; baselined = List.length findings - List.length fresh; stale }
