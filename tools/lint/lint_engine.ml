(* Parse + lint: one [.ml] file (or an in-memory fixture) in, findings
   out.  [.mli] files carry no loops, locks or state and are skipped. *)

let lint_source config ~file src =
  let file = Lint_util.normalize_path file in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Ppxlib.Parse.implementation lexbuf with
  | str -> Lint_rules.run config ~file str
  | exception e ->
      [
        Lint_finding.v ~file ~line:1 ~rule:"parse-error"
          (Printf.sprintf "file does not parse: %s" (Printexc.to_string e));
      ]

let lint_file config path = lint_source config ~file:path (Lint_util.read_file path)

let skip_dir name =
  name = "_build" || name = "_opam" || String.starts_with ~prefix:"." name

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc
           else collect_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths config paths =
  let files = List.fold_left collect_ml [] paths |> List.sort String.compare in
  (List.length files, List.concat_map (lint_file config) files)
