(* Parse + lint, whole-program: every [.ml] is parsed once, the
   syntactic rules (Lint_rules) run per file, then the cross-module
   call graph is built over all of them (Lint_callgraph) and the
   interprocedural analyses run over the graph (Lint_dataflow).
   [.mli] files carry no loops, locks or state and are skipped. *)

type result = {
  files : int;
  graph : Lint_callgraph.t;
  findings : Lint_finding.t list;
}

let parse ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Ppxlib.Parse.implementation lexbuf with
  | str -> Ok str
  | exception e ->
      Error
        (Lint_finding.v ~file ~line:1 ~rule:"parse-error"
           (Printf.sprintf "file does not parse: %s" (Printexc.to_string e)))

(* [sources] are (path, contents) pairs - real files or in-memory
   fixtures; the whole-program passes see them as one project. *)
let lint_sources config sources =
  let parsed, errors =
    List.fold_left
      (fun (parsed, errors) (file, src) ->
        let file = Lint_util.normalize_path file in
        match parse ~file src with
        | Ok str -> ((file, str) :: parsed, errors)
        | Error f -> (parsed, f :: errors))
      ([], []) sources
  in
  let parsed = List.rev parsed in
  let syntactic =
    List.concat_map (fun (file, str) -> Lint_rules.run config ~file str) parsed
  in
  let graph = Lint_callgraph.build parsed in
  let interprocedural = Lint_dataflow.run config graph in
  {
    files = List.length sources;
    graph;
    findings =
      List.sort_uniq Lint_finding.compare
        (errors @ syntactic @ interprocedural);
  }

(* Single-source convenience (the test fixtures): the file is its own
   whole program. *)
let lint_source config ~file src = (lint_sources config [ (file, src) ]).findings

let skip_dir name =
  name = "_build" || name = "_opam" || String.starts_with ~prefix:"." name

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc
           else collect_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths config paths =
  let files = List.fold_left collect_ml [] paths |> List.sort String.compare in
  lint_sources config
    (List.map (fun path -> (path, Lint_util.read_file path)) files)
