(* Whole-program pass 2: three interprocedural analyses over the
   Lint_callgraph.

   Budget reachability: every loop and recursive cycle reachable from a
   serving entry point (Engine.run_request*, Shard_run.run, handle_*
   handlers) without an intervening poll must itself poll a [Budget].
   A call edge is covered when its site sits inside a loop whose body
   transitively polls (the work between two polls of a driving loop is
   assumed bounded - the invariant the old hand-argued allowlist
   encoded) or when the calling frame consults [Budget] at all (a
   budget-aware frame polls around the work it delegates).

   Lock-held sets: the set of [Sync.with_lock] / [Protected.with_]
   sections held at each call edge is propagated down the graph;
   blocking operations ([Unix.*], channels, [Rpc.Client.*]) reachable
   with a non-empty held set are reported with the caller chain.
   Closures passed into a callee that invokes a parameter under its own
   lock ([Shard_cache.find_or_add ~compute]) are analyzed under that
   lock.  Lock identity is the printed acquisition expression, so two
   instances of one sharded lock field look the same: re-entry of the
   same key is deliberately not reported, inversions of distinct keys
   are.

   Mmap-view escapes: a function's return taints when a tail position
   mentions an [Mmap] handle (or builds a closure over one, or calls a
   tainted local function); copying accessors at value depth
   ([Mmap.u32], [Mmap.sub_string]) are the sanctioned decode-to-plain
   pattern and do not taint.  Sink arguments ([Hashtbl.add],
   [Shard_cache.find_or_add], [Atomic.set], [:=]) are evaluated against
   the local let environment and the returns-taint of called
   functions. *)

module G = Lint_callgraph

let in_dir dir file =
  String.starts_with ~prefix:(dir ^ "/") file
  || Lint_util.contains_substring ~sub:("/" ^ dir ^ "/") file

let serving_scope file =
  in_dir "lib" file || in_dir "bin" file || in_dir "tools" file

let mmap_scope file = in_dir "lib/index" file || in_dir "lib/storage" file

let base_name (d : G.def) =
  match List.rev (String.split_on_char '.' d.d_name) with
  | base :: _ -> base
  | [] -> d.d_name

(* Serving entry points: the RPC handlers and the engine request
   dispatchers.  Server.run's accept loop is deliberately not an entry:
   a server loops forever by design; budgets are per-request. *)
let is_entry (d : G.def) =
  (not d.d_lambda)
  && serving_scope d.d_file
  &&
  let base = base_name d in
  String.starts_with ~prefix:"run_request" base
  || String.starts_with ~prefix:"handle" base
  || (base = "run" && String.ends_with ~suffix:"shard_run.ml" d.d_file)

let allowed config ~rule ~file names =
  List.exists
    (fun n -> Lint_config.allowed config ~rule ~file ~name:(Some n))
    names

let defs_in_order (g : G.t) =
  List.filter_map (fun id -> G.find_def g id) g.order

(* Facts are consed during collection; source order is the reverse. *)
let calls_of (d : G.def) = List.rev d.d_calls
let loops_of (d : G.def) = List.rev d.d_loops
let acquires_of (d : G.def) = List.rev d.d_acquires
let blocking_of (d : G.def) = List.rev d.d_blocking
let sinks_of (d : G.def) = List.rev d.d_sinks

(* --- budget reachability --------------------------------------------- *)

(* eventually_polls: does calling this def reach a Budget mention?  Least
   fixpoint over call and lifted-closure edges. *)
let compute_ep g =
  let ep = Hashtbl.create 256 in
  let get id = Hashtbl.find_opt ep id = Some true in
  List.iter (fun (d : G.def) -> Hashtbl.replace ep d.d_id d.d_polls)
    (defs_in_order g);
  let call_polls (c : G.call) =
    (match c.c_target with G.Local id -> get id | _ -> false)
    || List.exists (fun (_, anon) -> get anon) c.c_lambdas
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : G.def) ->
        if not (get d.d_id) then
          if List.exists call_polls d.d_calls then begin
            Hashtbl.replace ep d.d_id true;
            changed := true
          end)
      (defs_in_order g)
  done;
  (get, call_polls)

(* Which loops of [d] are transitively polled: their own subtree
   mentions Budget, or a call made from inside them reaches one. *)
let polled_loops (d : G.def) call_polls =
  List.filter_map
    (fun (lp : G.loop) ->
      if
        lp.lp_polls
        || List.exists
             (fun (c : G.call) ->
               List.mem lp.lp_id c.c_loops && call_polls c)
             d.d_calls
      then Some lp.lp_id
      else None)
    d.d_loops

(* Unpolled reachability: BFS from the entries, stopping at covered
   edges.  Returns the set plus a predecessor map for traces. *)
let unpolled_reach g call_polls =
  let reach = Hashtbl.create 256 in
  let pred = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun (d : G.def) ->
      if is_entry d && not (Hashtbl.mem reach d.d_id) then begin
        Hashtbl.replace reach d.d_id ();
        Queue.add d.d_id queue
      end)
    (defs_in_order g);
  while not (Queue.is_empty queue) do
    match Queue.take_opt queue with
    | None -> ()
    | Some id -> (
        match G.find_def g id with
        | None -> ()
        | Some d ->
            if not d.d_polls then
              let polled = polled_loops d call_polls in
              List.iter
                (fun (c : G.call) ->
                  let covered =
                    List.exists (fun lp -> List.mem lp polled) c.c_loops
                  in
                  if not covered then
                    let visit tgt =
                      if not (Hashtbl.mem reach tgt) then begin
                        Hashtbl.replace reach tgt ();
                        Hashtbl.replace pred tgt (id, c.c_line, c.c_raw);
                        Queue.add tgt queue
                      end
                    in
                    (match c.c_target with
                    | G.Local tgt -> visit tgt
                    | G.External _ | G.Unknown -> ());
                    List.iter (fun (_, anon) -> visit anon) c.c_lambdas)
                (calls_of d))
  done;
  (reach, pred)

(* Caller chain from an entry down to [id], entry first. *)
let trace_to g pred id =
  let rec up id acc n =
    if n > 8 then acc
    else
      match Hashtbl.find_opt pred id with
      | None -> (
          match G.find_def g id with
          | Some d -> (d.d_file, d.d_line, "entry point " ^ d.d_name) :: acc
          | None -> acc)
      | Some (from, line, raw) -> (
          match G.find_def g from with
          | Some df ->
              up from
                ((df.d_file, line, df.d_name ^ " calls " ^ raw) :: acc)
                (n + 1)
          | None -> acc)
  in
  up id [] 0

(* Strongly connected components of the Local call graph (iterative
   Tarjan), for recursion cycles. *)
let sccs g =
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let succs id =
    match G.find_def g id with
    | None -> []
    | Some d ->
        List.concat_map
          (fun (c : G.call) ->
            (match c.c_target with G.Local t -> [ t ] | _ -> [])
            @ List.map snd c.c_lambdas)
          d.d_calls
  in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          let lv = Hashtbl.find_opt lowlink v and lw = Hashtbl.find_opt lowlink w in
          match (lv, lw) with
          | Some a, Some b -> Hashtbl.replace lowlink v (min a b)
          | _ -> ()
        end
        else if Hashtbl.mem on_stack w then
          match (Hashtbl.find_opt lowlink v, Hashtbl.find_opt index w) with
          | Some a, Some b -> Hashtbl.replace lowlink v (min a b)
          | _ -> ())
      (succs v);
    if Hashtbl.find_opt lowlink v = Hashtbl.find_opt index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter
    (fun (d : G.def) ->
      if not (Hashtbl.mem index d.d_id) then strongconnect d.d_id)
    (defs_in_order g);
  List.rev !out

let budget_findings config g =
  let _ep, call_polls = compute_ep g in
  let reach, pred = unpolled_reach g call_polls in
  let loops =
    List.concat_map
      (fun (d : G.def) ->
        if
          (not (Hashtbl.mem reach d.d_id))
          || (not (serving_scope d.d_file))
          || d.d_budget_waived
        then []
        else
          let polled = polled_loops d call_polls in
          List.filter_map
            (fun (lp : G.loop) ->
              if
                List.mem lp.lp_id polled
                || List.exists (fun e -> List.mem e polled) lp.lp_enclosing
                || lp.lp_waived
                || allowed config ~rule:G.rule_budget ~file:d.d_file
                     [ base_name d ]
              then None
              else
                let trace =
                  trace_to g pred d.d_id
                  @ [ (d.d_file, lp.lp_line, "unpolled " ^ lp.lp_desc) ]
                in
                Some
                  (Lint_finding.v ~file:d.d_file ~line:lp.lp_line ~trace
                     ~rule:G.rule_budget
                     (Printf.sprintf
                        "%s in %s is reachable from a serving entry point \
                         but never polls Budget (poll in the loop or on \
                         the call chain)"
                        lp.lp_desc d.d_name)))
            (loops_of d))
      (defs_in_order g)
  in
  let cycles =
    List.filter_map
      (fun scc ->
        let members = List.filter_map (G.find_def g) scc in
        let has_cycle =
          match members with
          | [] -> false
          | [ (d : G.def) ] ->
              List.exists
                (fun (c : G.call) -> c.c_target = G.Local d.d_id)
                d.d_calls
          | _ :: _ :: _ -> true
        in
        if not has_cycle then None
        else
          let polls =
            List.exists
              (fun (d : G.def) ->
                d.d_polls || List.exists call_polls d.d_calls)
              members
          in
          let reachable =
            List.filter
              (fun (d : G.def) ->
                Hashtbl.mem reach d.d_id && serving_scope d.d_file)
              members
          in
          let waived =
            List.exists
              (fun (d : G.def) ->
                d.d_budget_waived
                || allowed config ~rule:G.rule_budget ~file:d.d_file
                     [ base_name d ])
              members
          in
          match reachable with
          | [] -> None
          | _ when polls || waived -> None
          | rep :: _ ->
              let names =
                List.map (fun (d : G.def) -> d.d_name) members
                |> List.sort String.compare
              in
              let trace =
                trace_to g pred rep.d_id
                @ [ (rep.d_file, rep.d_line, "recursive cycle") ]
              in
              Some
                (Lint_finding.v ~file:rep.d_file ~line:rep.d_line ~trace
                   ~rule:G.rule_budget
                   (Printf.sprintf
                      "recursive cycle (%s) is reachable from a serving \
                       entry point but never polls Budget"
                      (String.concat ", " names))))
      (sccs g)
  in
  loops @ cycles

(* --- lock-held sets --------------------------------------------------- *)

(* First blocking operation reachable from a def, with the frame chain
   to it.  Memoized; a cycle contributes nothing on the back edge. *)
let first_blocking g =
  let memo : (string, (string * string * int * (string * int * string) list) option) Hashtbl.t =
    Hashtbl.create 256
  in
  let in_progress = Hashtbl.create 16 in
  let rec fb id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
        if Hashtbl.mem in_progress id then None
        else begin
          Hashtbl.replace in_progress id ();
          let result =
            match G.find_def g id with
            | None -> None
            | Some d -> (
                match
                  List.find_opt
                    (fun (b : G.blocking) -> not b.b_waived)
                    (blocking_of d)
                with
                | Some b -> Some (b.b_path, d.d_file, b.b_line, [])
                | None ->
                    List.find_map
                      (fun (c : G.call) ->
                        let via tgt note =
                          match fb tgt with
                          | Some (path, file, line, frames) ->
                              Some
                                ( path,
                                  file,
                                  line,
                                  (d.d_file, c.c_line, note) :: frames )
                          | None -> None
                        in
                        let from_lambdas =
                          List.find_map
                            (fun (_, anon) ->
                              via anon (d.d_name ^ " passes a closure"))
                            c.c_lambdas
                        in
                        match from_lambdas with
                        | Some r -> Some r
                        | None -> (
                            match c.c_target with
                            | G.Local tgt ->
                                via tgt (d.d_name ^ " calls " ^ c.c_raw)
                            | G.External _ | G.Unknown -> None))
                      (calls_of d))
          in
          Hashtbl.remove in_progress id;
          Hashtbl.replace memo id result;
          result
        end
  in
  fb

let lock_findings config g =
  let fb = first_blocking g in
  let check_names d (b_path : string) =
    [ base_name d; b_path ]
  in
  List.concat_map
    (fun (d : G.def) ->
      if not (serving_scope d.d_file) then []
      else
        (* blocking op lexically under a lock (the old syntactic rule) *)
        let local =
          List.filter_map
            (fun (b : G.blocking) ->
              if
                b.b_locks = [] || b.b_waived
                || allowed config ~rule:G.rule_lock_io ~file:d.d_file
                     (check_names d b.b_path)
              then None
              else
                Some
                  (Lint_finding.v ~file:d.d_file ~line:b.b_line
                     ~rule:G.rule_lock_io
                     (Printf.sprintf
                        "blocking call %s while holding lock [%s]" b.b_path
                        (String.concat "; " b.b_locks))))
            (blocking_of d)
        in
        (* call made under a lock whose callee chain blocks *)
        let transitive =
          List.concat_map
            (fun (c : G.call) ->
              if c.c_locks = [] then []
              else
                let report tgt intro =
                  match fb tgt with
                  | Some (path, bfile, bline, frames)
                    when not
                           (allowed config ~rule:G.rule_lock_io
                              ~file:d.d_file (check_names d path)) ->
                      [
                        Lint_finding.v ~file:d.d_file ~line:c.c_line
                          ~trace:
                            (((d.d_file, c.c_line, intro) :: frames)
                            @ [ (bfile, bline, "blocking call " ^ path) ])
                          ~rule:G.rule_lock_io
                          (Printf.sprintf
                             "call to %s under lock [%s] reaches blocking \
                              %s (%s:%d)"
                             c.c_raw
                             (String.concat "; " c.c_locks)
                             path bfile bline);
                      ]
                  | _ -> []
                in
                match c.c_target with
                | G.Local tgt ->
                    report tgt
                      (Printf.sprintf "%s calls %s holding [%s]" d.d_name
                         c.c_raw
                         (String.concat "; " c.c_locks))
                | G.External _ | G.Unknown -> [])
            (calls_of d)
        in
        (* closure handed to a callee that runs it under its own lock *)
        let via_params =
          List.concat_map
            (fun (c : G.call) ->
              match c.c_target with
              | G.Local tgt_id -> (
                  match G.find_def g tgt_id with
                  | None -> []
                  | Some tgt ->
                      List.concat_map
                        (fun (label, anon) ->
                          List.concat_map
                            (fun (p, locks) ->
                              if
                                locks = []
                                || (label <> "" && label <> p)
                              then []
                              else
                                match fb anon with
                                | Some (path, bfile, bline, frames)
                                  when not
                                         (allowed config
                                            ~rule:G.rule_lock_io
                                            ~file:d.d_file
                                            (check_names d path)) ->
                                    [
                                      Lint_finding.v ~file:d.d_file
                                        ~line:c.c_line
                                        ~trace:
                                          ([
                                             ( d.d_file,
                                               c.c_line,
                                               Printf.sprintf
                                                 "%s passes a closure to \
                                                  %s"
                                                 d.d_name c.c_raw );
                                             ( tgt.d_file,
                                               tgt.d_line,
                                               Printf.sprintf
                                                 "%s invokes [%s] under \
                                                  lock [%s]"
                                                 tgt.d_name p
                                                 (String.concat "; " locks)
                                             );
                                           ]
                                          @ frames
                                          @ [
                                              ( bfile,
                                                bline,
                                                "blocking call " ^ path );
                                            ])
                                        ~rule:G.rule_lock_io
                                        (Printf.sprintf
                                           "closure passed to %s runs \
                                            under lock [%s] and reaches \
                                            blocking %s (%s:%d)"
                                           c.c_raw
                                           (String.concat "; " locks)
                                           path bfile bline);
                                    ]
                                | _ -> [])
                            tgt.d_param_calls)
                        c.c_lambdas)
              | G.External _ | G.Unknown -> [])
            (calls_of d)
        in
        local @ transitive @ via_params)
    (defs_in_order g)

(* --- lock order ------------------------------------------------------- *)

(* All acquisitions reachable from a def (its own plus its callees'). *)
let acquired_under g =
  let memo = Hashtbl.create 256 in
  let in_progress = Hashtbl.create 16 in
  let rec au id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
        if Hashtbl.mem in_progress id then []
        else begin
          Hashtbl.replace in_progress id ();
          let result =
            match G.find_def g id with
            | None -> []
            | Some d ->
                let own =
                  List.filter_map
                    (fun (a : G.acquire) ->
                      if a.a_waived then None
                      else Some (a.a_key, d.d_file, a.a_line))
                    (acquires_of d)
                in
                let below =
                  List.concat_map
                    (fun (c : G.call) ->
                      (match c.c_target with
                      | G.Local tgt -> au tgt
                      | _ -> [])
                      @ List.concat_map (fun (_, anon) -> au anon) c.c_lambdas)
                    (calls_of d)
                in
                (* dedup by key, keeping the first witness *)
                List.fold_left
                  (fun acc ((k, _, _) as site) ->
                    if List.exists (fun (k', _, _) -> k' = k) acc then acc
                    else acc @ [ site ])
                  [] (own @ below)
          in
          Hashtbl.remove in_progress id;
          Hashtbl.replace memo id result;
          result
        end
  in
  au

let order_findings config g =
  let au = acquired_under g in
  (* (k1, k2) -> first witness of k2 acquired while k1 is held *)
  let edges : (string * string, string * int * string) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_edge k1 k2 file line note =
    if k1 <> k2 && not (Hashtbl.mem edges (k1, k2)) then
      Hashtbl.replace edges (k1, k2) (file, line, note)
  in
  List.iter
    (fun (d : G.def) ->
      if serving_scope d.d_file then begin
        List.iter
          (fun (a : G.acquire) ->
            if not a.a_waived then
              List.iter
                (fun k1 ->
                  add_edge k1 a.a_key d.d_file a.a_line
                    (Printf.sprintf "%s acquires [%s] holding [%s]" d.d_name
                       a.a_key k1))
                a.a_held)
          (acquires_of d);
        List.iter
          (fun (c : G.call) ->
            if c.c_locks <> [] then
              let reached =
                (match c.c_target with G.Local tgt -> au tgt | _ -> [])
                @ List.concat_map (fun (_, anon) -> au anon) c.c_lambdas
              in
              List.iter
                (fun (k2, _, _) ->
                  List.iter
                    (fun k1 ->
                      add_edge k1 k2 d.d_file c.c_line
                        (Printf.sprintf
                           "%s calls %s holding [%s]; the callee acquires \
                            [%s]"
                           d.d_name c.c_raw k1 k2))
                    c.c_locks)
                reached)
          (calls_of d)
      end)
    (defs_in_order g);
  let pairs = ref [] in
  Hashtbl.iter
    (fun (k1, k2) w12 ->
      if k1 < k2 then
        match Hashtbl.find_opt edges (k2, k1) with
        | Some w21 -> pairs := ((k1, k2), w12, w21) :: !pairs
        | None -> ())
    edges;
  List.sort compare !pairs
  |> List.filter_map (fun ((k1, k2), (f1, l1, n1), (f2, l2, n2)) ->
         let file, line, trace =
           if (f1, l1) <= (f2, l2) then
             (f1, l1, [ (f1, l1, n1); (f2, l2, n2) ])
           else (f2, l2, [ (f2, l2, n2); (f1, l1, n1) ])
         in
         if
           allowed config ~rule:G.rule_lock_order ~file [ k1; k2 ]
         then None
         else
           Some
             (Lint_finding.v ~file ~line ~trace ~rule:G.rule_lock_order
                (Printf.sprintf
                   "locks [%s] and [%s] are acquired in both orders \
                    (%s:%d and %s:%d)"
                   k1 k2 f1 l1 f2 l2)))

(* --- mmap escapes ----------------------------------------------------- *)

(* Returns-taint fixpoint.  [scoped] restricts the taint sources to
   defs in lib/index / lib/storage, the layers whose views the rule
   polices: taint entering from elsewhere is someone else's fixture. *)
let returns_mmap g ~scoped =
  let rm = Hashtbl.create 256 in
  let get id = Hashtbl.find_opt rm id = Some true in
  let taints (d : G.def) (tx : G.texpr) =
    let rec tx_taint seen (tx : G.texpr) =
      (tx.t_direct && ((not scoped) || mmap_scope d.d_file))
      || List.exists
           (function G.Local id -> get id | _ -> false)
           tx.t_targets
      || List.exists
           (fun v ->
             (not (List.mem v seen))
             &&
             match List.assoc_opt v d.d_lets with
             | Some tx' -> tx_taint (v :: seen) tx'
             | None -> false)
           tx.t_vars
    in
    tx_taint [] tx
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : G.def) ->
        if not (get d.d_id) then
          if List.exists (taints d) d.d_ret then begin
            Hashtbl.replace rm d.d_id true;
            changed := true
          end)
      (defs_in_order g)
  done;
  (get, taints)

let mmap_findings config g =
  let rms, taints = returns_mmap g ~scoped:true in
  List.concat_map
    (fun (d : G.def) ->
      List.filter_map
        (fun (k : G.sink) ->
          let tainted = taints d k.k_taint in
          if
            (not tainted) || k.k_waived
            || allowed config ~rule:G.rule_mmap ~file:d.d_file
                 [ base_name d; k.k_sink ]
          then None
          else
            let via =
              List.find_map
                (function
                  | G.Local id when rms id -> G.find_def g id
                  | _ -> None)
                k.k_taint.t_targets
            in
            let trace =
              match via with
              | Some src ->
                  [
                    ( src.d_file,
                      src.d_line,
                      src.d_name ^ " returns an Mmap-backed value" );
                    (d.d_file, k.k_line, "stored into " ^ k.k_sink);
                  ]
              | None -> []
            in
            Some
              (Lint_finding.v ~file:d.d_file ~line:k.k_line ~trace
                 ~rule:G.rule_mmap
                 (Printf.sprintf
                    "Mmap-backed value flows into long-lived sink %s \
                     (decode into plain values first)"
                    k.k_sink)))
        (sinks_of d))
    (defs_in_order g)

(* --- driver ----------------------------------------------------------- *)

let run config g =
  budget_findings config g @ lock_findings config g @ order_findings config g
  @ mmap_findings config g
  |> List.sort_uniq Lint_finding.compare
