(* The curated allowlist ([xklint.config]).  One directive per line:

     allow <rule> <path> [name]

   [rule] is a rule id or [*].  [path] matches a linted file when it is
   equal to it, is a suffix of it at a [/] boundary, or - when it ends
   with [/] - is a directory component prefix of it.  [name] depends on
   the rule: the enclosing (or defined) function for [budget-loop], the
   bound variable for [shared-state], the offending identifier for
   [bare-lock]/[typed-error]; omitted or [*] matches anything.  [#]
   starts a comment. *)

type entry = { rule : string; path : string; name : string option }
type t = { allows : entry list }

let empty = { allows = [] }

let of_string src =
  let errors = ref [] in
  let entries = ref [] in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         with
         | [] -> ()
         | [ "allow"; rule; path ] ->
             entries := { rule; path; name = None } :: !entries
         | [ "allow"; rule; path; "*" ] ->
             entries := { rule; path; name = None } :: !entries
         | [ "allow"; rule; path; name ] ->
             entries := { rule; path; name = Some name } :: !entries
         | _ ->
             errors :=
               Printf.sprintf "line %d: expected 'allow <rule> <path> [name]'"
                 (i + 1)
               :: !errors);
  match !errors with
  | [] -> Ok { allows = List.rev !entries }
  | es -> Error (String.concat "; " (List.rev es))

let of_file path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let src = Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        In_channel.input_all ic)
    in
    of_string src

let path_matches ~pattern file =
  pattern = file
  || String.ends_with ~suffix:("/" ^ pattern) file
  || (String.length pattern > 0
     && pattern.[String.length pattern - 1] = '/'
     && (String.starts_with ~prefix:pattern file
        || Lint_util.contains_substring ~sub:("/" ^ pattern) file))

let allowed t ~rule ~file ~name =
  List.exists
    (fun e ->
      (e.rule = rule || e.rule = "*")
      && path_matches ~pattern:e.path file
      && match e.name with None -> true | Some n -> name = Some n)
    t.allows
