(* A single diagnostic.  The baseline identifies findings by
   [file * rule * msg] only - no line numbers - so unrelated edits that
   shift code around do not invalidate grandfathered entries. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  file : string;
  line : int;
  severity : severity;
  rule : string;
  msg : string;
}

let v ~file ~line ?(severity = Error) ~rule msg =
  { file; line; severity; rule; msg }

let to_string f =
  Printf.sprintf "%s:%d %s %s %s" f.file f.line
    (severity_to_string f.severity)
    f.rule f.msg

(* Tab-separated so the message may contain spaces. *)
let key f = String.concat "\t" [ f.file; f.rule; f.msg ]

let compare a b =
  Stdlib.compare (a.file, a.line, a.rule, a.msg) (b.file, b.line, b.rule, b.msg)
