(* A single diagnostic.  The baseline identifies findings by
   [file * rule * msg] only - no line numbers - so unrelated edits that
   shift code around do not invalidate grandfathered entries. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  file : string;
  line : int;
  severity : severity;
  rule : string;
  msg : string;
  trace : (string * int * string) list;
      (* interprocedural witness: (file, line, note) per frame,
         entry point first; empty for syntactic findings *)
}

let v ~file ~line ?(severity = Error) ?(trace = []) ~rule msg =
  { file; line; severity; rule; msg; trace }

let to_string f =
  let head =
    Printf.sprintf "%s:%d %s %s %s" f.file f.line
      (severity_to_string f.severity)
      f.rule f.msg
  in
  match f.trace with
  | [] -> head
  | frames ->
      String.concat "\n"
        (head
        :: List.map
             (fun (file, line, note) ->
               Printf.sprintf "    via %s:%d  %s" file line note)
             frames)

(* Tab-separated so the message may contain spaces. *)
let key f = String.concat "\t" [ f.file; f.rule; f.msg ]

let compare a b =
  Stdlib.compare (a.file, a.line, a.rule, a.msg) (b.file, b.line, b.rule, b.msg)
