(* Whole-program pass 1: parse every file, build a def table (top-level
   bindings, bindings nested in modules and in function bodies, and
   lambda arguments lifted at call sites) and a cross-module call graph,
   and collect per-def facts for the interprocedural analyses in
   Lint_dataflow:

   - calls, with the set of lock keys held lexically at the site, the
     enclosing loops, and any lambda arguments (lifted to anonymous
     defs so a callee's summary can place them under the callee's lock);
   - loops (while loops; recursive bindings are self-edges in the
     graph), with whether their own subtree polls a [Budget];
   - lock acquisitions ([Sync.with_lock] / [Sync.Protected.with_]),
     keyed by the printed lock expression;
   - blocking identifiers ([Unix.*], [In_channel.*], [Out_channel.*],
     [Rpc.Client.*]) with the locks held around them;
   - parameter invocations ("this def calls its [~compute] argument
     under lock K"), the higher-order summary that lets a caller's
     lambda be analyzed under a callee's critical section;
   - mmap taint expressions for let bindings, return positions and
     sink arguments.

   Resolution maps [Module.f] through the dune library wrappers
   ([Xk_core.Engine.f] -> lib/core/engine.ml#f), sibling modules of the
   same directory ([Erased.add] in lib/core -> lib/core/erased.ml#add),
   [include]d modules, top-level [module X = Path] aliases and nested
   modules ([Sync.Protected.with_] -> lib/util/sync.ml#Protected.with_).
   Anything else - first-class functions, record-field calls, stdlib -
   is an [External] (known dotted path) or [Unknown] (no claim) node. *)

open Ppxlib

type target = Local of string | External of string | Unknown

type call = {
  c_raw : string;  (* the dotted path as written *)
  mutable c_target : target;
  c_line : int;
  c_locks : string list;  (* lock keys held lexically, outermost first *)
  c_loops : int list;  (* enclosing loop ids within the def *)
  c_lambdas : (string * string) list;  (* (arg label or "", lifted def id) *)
}

type loop = {
  lp_id : int;
  lp_line : int;
  lp_desc : string;
  mutable lp_polls : bool;  (* Budget mention in its own subtree *)
  lp_enclosing : int list;
  lp_waived : bool;
}

type acquire = {
  a_key : string;
  a_line : int;
  a_held : string list;  (* keys already held at this acquisition *)
  a_waived : bool;
}

type blocking = {
  b_path : string;
  b_line : int;
  b_locks : string list;
  b_waived : bool;
}

(* A taint descriptor for one expression: does it mention [Mmap]
   directly, which functions does it apply in value position (their
   return taint flows through), and which local variables does it
   mention (their binding taint flows through). *)
type texpr = {
  t_line : int;
  t_direct : bool;
  t_raw_calls : string list;
  mutable t_targets : target list;
  t_vars : string list;
}

type sink = { k_sink : string; k_line : int; k_taint : texpr; k_waived : bool }

type def = {
  d_id : string;  (* file ^ "#" ^ dotted def path *)
  d_file : string;
  d_name : string;  (* display name, e.g. "Shard_cache.find_or_add" *)
  d_line : int;
  d_rec : bool;
  d_lambda : bool;
  d_params : (string * string) list;  (* (label or "", parameter name) *)
  mutable d_polls : bool;
  mutable d_calls : call list;
  mutable d_loops : loop list;
  mutable d_acquires : acquire list;
  mutable d_blocking : blocking list;
  mutable d_param_calls : (string * string list) list;  (* param, lock keys *)
  mutable d_lets : (string * texpr) list;
  mutable d_ret : texpr list;
  d_budget_waived : bool;
  mutable d_sinks : sink list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  order : string list;  (* def ids, deterministic (file then source order) *)
  n_files : int;
}

let find_def t id = Hashtbl.find_opt t.defs id
let n_defs t = Hashtbl.length t.defs
let n_edges t = Hashtbl.fold (fun _ d n -> n + List.length d.d_calls) t.defs 0

(* --- vocabulary ------------------------------------------------------ *)

let lock_wrappers =
  [
    "Sync.with_lock";
    "Xk_util.Sync.with_lock";
    "with_lock";
    "Sync.Protected.with_";
    "Xk_util.Sync.Protected.with_";
    "Protected.with_";
  ]

let blocking_prefixes =
  [ "Unix."; "In_channel."; "Out_channel."; "Rpc.Client."; "Xk_rpc.Client." ]

let is_blocking path =
  List.exists (fun p -> String.starts_with ~prefix:p path) blocking_prefixes

let mmap_sinks =
  [
    "Shard_cache.find_or_add";
    "Xk_index.Shard_cache.find_or_add";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Atomic.set";
    ":=";
  ]

let mentions_mmap_path path =
  List.exists (fun part -> part = "Mmap") (String.split_on_char '.' path)

(* Mmap accessors that return plain copies (ints, fresh strings): an
   application of one of these at value depth is "decode into plain
   OCaml values", the documented safe pattern.  The same application
   inside a stored closure still captures the handle and taints. *)
let mmap_accessors =
  [
    "u8"; "u32"; "u64"; "sub_string"; "crc32"; "crc32_update"; "size";
    "path"; "is_closed"; "error_message";
  ]

let is_mmap_accessor path =
  match List.rev (String.split_on_char '.' path) with
  | leaf :: "Mmap" :: _ -> List.mem leaf mmap_accessors
  | _ -> false

let lowercase_head s = String.length s > 0 && s.[0] >= 'a' && s.[0] <= 'z'
let rule_budget = "budget-loop"
let rule_lock_io = "blocking-io-under-lock"
let rule_lock_order = "lock-order"
let rule_mmap = "mmap-lifetime"

(* --- module universe -------------------------------------------------- *)

(* One parsed file plus what resolution needs to know about it. *)
type pfile = {
  p_path : string;
  p_dir : string;
  p_module : string;  (* "Shard_cache" for lib/index/shard_cache.ml *)
  p_str : structure;
  mutable p_includes : string list list;  (* raw module paths *)
  mutable p_aliases : (string * string list) list;
  mutable p_allows : string list;  (* file-level [@@@xklint.allow] *)
}

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* The dune library wrapper a directory compiles into: lib/<x> wraps as
   Xk_<x>, tools/lint as Xklint_lib.  Derived from the path (the tests
   lint in-memory fixtures, so reading dune files is not an option). *)
let wrapper_of_dir dir =
  let base = Filename.basename dir in
  if base = "" then None
  else if Filename.basename (Filename.dirname dir) = "lib" || dir = "lib"
  then Some (String.capitalize_ascii ("xk_" ^ base))
  else if base = "lint" then Some "Xklint_lib"
  else None

type universe = {
  u_files : (string, pfile) Hashtbl.t;  (* path -> file *)
  u_by_module : (string * string, string) Hashtbl.t;  (* (dir, Mod) -> path *)
  u_wrappers : (string, string) Hashtbl.t;  (* "Xk_core" -> "lib/core" *)
  u_defs : (string, def) Hashtbl.t;
  mutable u_order : string list;  (* reversed during build *)
}

let add_def u d =
  if not (Hashtbl.mem u.u_defs d.d_id) then begin
    Hashtbl.replace u.u_defs d.d_id d;
    u.u_order <- d.d_id :: u.u_order
  end

(* --- collection ------------------------------------------------------- *)

(* Mutable traversal state for one def body. *)
type cstate = {
  cs_def : def;
  mutable cs_locks : string list;
  mutable cs_loops : int list;
  mutable cs_allows : string list list;
  mutable cs_next_loop : int;
  mutable cs_next_anon : int;
}

let line_of loc = loc.loc_start.pos_lnum

let waived_here st file_allows rule =
  Lint_ast.allows_hit rule file_allows
  || List.exists (Lint_ast.allows_hit rule) st.cs_allows

(* Structural taint scan: which [Mmap] mentions, function applications
   and variables can flow into this expression's value.  Function
   arguments do not propagate (a call's taint is its callee's return
   taint), which is what lets "decode into plain values first" pass. *)
let texpr_of e =
  let direct = ref false in
  let calls = ref [] in
  let vars = ref [] in
  let rec go ~closed e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let path = Lint_ast.strip_stdlib (Lint_ast.ident_path txt) in
        if mentions_mmap_path path then direct := true
        else
          match txt with
          | Lident v
            when String.length v > 0 && v.[0] >= 'a' && v.[0] <= 'z' ->
              vars := v :: !vars
          | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        let path = Lint_ast.strip_stdlib (Lint_ast.ident_path txt) in
        if mentions_mmap_path path then begin
          if closed || not (is_mmap_accessor path) then direct := true
          (* copying accessor at value depth: a plain decoded value *)
        end
        else calls := path :: !calls
    | Pexp_apply (_, _) -> ()
    | Pexp_function (_, _, Pfunction_body b) -> go ~closed:true b
    | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
        List.iter (fun c -> go ~closed:true c.pc_rhs) cases
    | Pexp_tuple es | Pexp_array es -> List.iter (go ~closed) es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> go ~closed a
    | Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> go ~closed v) fields;
        Option.iter (go ~closed) base
    | Pexp_field (b, _) -> go ~closed b
    | Pexp_lazy b -> go ~closed:true b
    | Pexp_let _ | Pexp_sequence _ | Pexp_ifthenelse _ | Pexp_match _
    | Pexp_try _ | Pexp_constraint _ | Pexp_coerce _ | Pexp_open _
    | Pexp_letmodule _ | Pexp_letexception _ ->
        List.iter (go ~closed) (Lint_ast.tail_exprs e)
    | _ -> ()
  in
  go ~closed:false e;
  {
    t_line = line_of e.pexp_loc;
    t_direct = !direct;
    t_raw_calls = !calls;
    t_targets = [];
    t_vars = !vars;
  }

(* The per-def collector: a Ast_traverse.iter whose [expression] handles
   the interesting shapes and defers the rest to the default traversal.
   Nested named functions and lambda arguments spawn fresh collectors
   over fresh defs. *)
let rec collect_def u (pf : pfile) ~defpath ~(def : def) ~locks bodies =
  let st =
    {
      cs_def = def;
      cs_locks = locks;
      cs_loops = [];
      cs_allows = [];
      cs_next_loop = 0;
      cs_next_anon = 0;
    }
  in
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super

      method private note_path path line =
        if
          List.exists
            (fun part -> part = "Budget")
            (String.split_on_char '.' path)
        then begin
          def.d_polls <- true;
          List.iter
            (fun id ->
              List.iter
                (fun lp -> if lp.lp_id = id then lp.lp_polls <- true)
                def.d_loops)
            st.cs_loops
        end;
        if is_blocking path then
          def.d_blocking <-
            {
              b_path = path;
              b_line = line;
              b_locks = st.cs_locks;
              b_waived = waived_here st pf.p_allows rule_lock_io;
            }
            :: def.d_blocking

      method private record_call ?(lambdas = []) path line =
        def.d_calls <-
          {
            c_raw = path;
            c_target = Unknown;
            c_line = line;
            c_locks = st.cs_locks;
            c_loops = st.cs_loops;
            c_lambdas = lambdas;
          }
          :: def.d_calls

      method private lift_lambda label e =
        let line = line_of e.pexp_loc in
        st.cs_next_anon <- st.cs_next_anon + 1;
        let anon =
          Printf.sprintf "<fun:%d:%d>" line st.cs_next_anon
        in
        let path = defpath @ [ anon ] in
        let id = pf.p_path ^ "#" ^ String.concat "." path in
        let _, bodies = Lint_ast.peel_function e in
        let sub =
          {
            d_id = id;
            d_file = pf.p_path;
            d_name = pf.p_module ^ "." ^ String.concat "." path;
            d_line = line;
            d_rec = false;
            d_lambda = true;
            d_params = [];
            d_polls = false;
            d_calls = [];
            d_loops = [];
            d_acquires = [];
            d_blocking = [];
            d_param_calls = [];
            d_lets = [];
            d_ret = List.concat_map Lint_ast.tail_exprs bodies
                    |> List.map texpr_of;
            d_budget_waived = waived_here st pf.p_allows rule_budget;
            d_sinks = [];
          }
        in
        add_def u sub;
        collect_def u pf ~defpath:path ~def:sub ~locks:st.cs_locks
          (Lint_ast.param_defaults e @ bodies);
        (label, id)

      method private nested_binding rf vb =
        match Lint_ast.binding_name vb with
        | Some name when Lint_ast.is_function_binding vb ->
            let vb_allows = Lint_ast.allows_of_attributes vb.pvb_attributes in
            st.cs_allows <- vb_allows :: st.cs_allows;
            let path = defpath @ [ name ] in
            let id = pf.p_path ^ "#" ^ String.concat "." path in
            let params, bodies = Lint_ast.peel_function vb.pvb_expr in
            let sub =
              {
                d_id = id;
                d_file = pf.p_path;
                d_name = pf.p_module ^ "." ^ String.concat "." path;
                d_line = line_of vb.pvb_loc;
                d_rec = (rf = Recursive);
                d_lambda = false;
                d_params = params;
                d_polls = false;
                d_calls = [];
                d_loops = [];
                d_acquires = [];
                d_blocking = [];
                d_param_calls = [];
                d_lets = [];
                d_ret = List.concat_map Lint_ast.tail_exprs bodies
                        |> List.map texpr_of;
                d_budget_waived = waived_here st pf.p_allows rule_budget;
                d_sinks = [];
              }
            in
            add_def u sub;
            collect_def u pf ~defpath:path ~def:sub ~locks:st.cs_locks
              (Lint_ast.param_defaults vb.pvb_expr @ bodies);
            (* The definition site is an edge: a nested function is at
               least callable where it is defined. *)
            self#record_call name (line_of vb.pvb_loc);
            st.cs_allows <- Lint_ast.pop_stack st.cs_allows
        | Some name ->
            def.d_lets <- (name, texpr_of vb.pvb_expr) :: def.d_lets;
            self#expression vb.pvb_expr
        | None -> self#expression vb.pvb_expr

      (* [Sync.with_lock m (fun () -> body)]: the body runs with [m]
         held.  Also [with_lock m f] for a named or parameter [f]. *)
      method private section wrapper args line =
        ignore wrapper;
        match args with
        | (_, lock_e) :: rest when rest <> [] ->
            let key = Lint_ast.expr_key lock_e in
            def.d_acquires <-
              {
                a_key = key;
                a_line = line;
                a_held = st.cs_locks;
                a_waived = waived_here st pf.p_allows rule_lock_order;
              }
              :: def.d_acquires;
            self#expression lock_e;
            List.iter
              (fun (_, arg) ->
                if Lint_ast.is_lambda arg then begin
                  let saved = st.cs_locks in
                  st.cs_locks <- st.cs_locks @ [ key ];
                  let _, bodies = Lint_ast.peel_function arg in
                  List.iter self#expression bodies;
                  st.cs_locks <- saved
                end
                else
                  match arg.pexp_desc with
                  | Pexp_ident { txt = Lident v; _ }
                    when List.exists (fun (_, p) -> p = v) def.d_params ->
                      def.d_param_calls <-
                        (v, st.cs_locks @ [ key ]) :: def.d_param_calls
                  | Pexp_ident { txt; _ } ->
                      let saved = st.cs_locks in
                      st.cs_locks <- st.cs_locks @ [ key ];
                      self#record_call
                        (Lint_ast.strip_stdlib (Lint_ast.ident_path txt))
                        (line_of arg.pexp_loc);
                      st.cs_locks <- saved
                  | _ ->
                      let saved = st.cs_locks in
                      st.cs_locks <- st.cs_locks @ [ key ];
                      self#expression arg;
                      st.cs_locks <- saved)
              rest
        | _ -> List.iter (fun (_, a) -> self#expression a) args

      method private apply head_txt args line =
        let path = Lint_ast.strip_stdlib (Lint_ast.ident_path head_txt) in
        self#note_path path line;
        if List.mem path lock_wrappers then self#section path args line
        else begin
          (if List.mem path mmap_sinks then
             List.iter
               (fun ((_, arg) : arg_label * expression) ->
                 def.d_sinks <-
                   {
                     k_sink = path;
                     k_line = line_of arg.pexp_loc;
                     k_taint = texpr_of arg;
                     k_waived = waived_here st pf.p_allows rule_mmap;
                   }
                   :: def.d_sinks)
               args);
          match head_txt with
          | Lident v when List.exists (fun (_, p) -> p = v) def.d_params ->
              def.d_param_calls <- (v, st.cs_locks) :: def.d_param_calls;
              List.iter (fun (_, a) -> self#expression a) args
          | _ ->
              let lambdas = ref [] in
              List.iter
                (fun ((lbl, arg) : arg_label * expression) ->
                  if Lint_ast.is_lambda arg then
                    let label =
                      match lbl with
                      | Nolabel -> ""
                      | Labelled l | Optional l -> l
                    in
                    lambdas := self#lift_lambda label arg :: !lambdas
                  else self#expression arg)
                args;
              self#record_call ~lambdas:(List.rev !lambdas) path line
        end

      method! expression e =
        let allows = Lint_ast.allows_of_attributes e.pexp_attributes in
        st.cs_allows <- allows :: st.cs_allows;
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            let path = Lint_ast.strip_stdlib (Lint_ast.ident_path txt) in
            let line = line_of e.pexp_loc in
            self#note_path path line;
            (* A bare mention of a function is a potential call (passed
               to an iterator, stored, spawned): keep the edge so
               reachability stays conservative.  A bare mention of a
               parameter is NOT an invocation - storing a job in a
               queue under a lock runs it later, elsewhere - so only
               real applications feed the higher-order summary. *)
            match txt with
            | Lident v when List.exists (fun (_, p) -> p = v) def.d_params
              ->
                ()
            | Lident v when lowercase_head v -> self#record_call path line
            | Ldot (_, _) when not (is_blocking path) ->
                self#record_call path line
            | _ -> ())
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            self#apply txt args (line_of e.pexp_loc)
        | Pexp_apply (head, args) ->
            self#expression head;
            List.iter (fun (_, a) -> self#expression a) args
        | Pexp_while (cond, body) ->
            st.cs_next_loop <- st.cs_next_loop + 1;
            let lp =
              {
                lp_id = st.cs_next_loop;
                lp_line = line_of e.pexp_loc;
                lp_desc = "while loop";
                lp_polls = false;
                lp_enclosing = st.cs_loops;
                lp_waived = waived_here st pf.p_allows rule_budget;
              }
            in
            def.d_loops <- lp :: def.d_loops;
            st.cs_loops <- lp.lp_id :: st.cs_loops;
            self#expression cond;
            self#expression body;
            st.cs_loops <- Lint_ast.pop_stack st.cs_loops
        | Pexp_let (rf, vbs, cont) ->
            List.iter (self#nested_binding rf) vbs;
            self#expression cont
        | _ -> super#expression e);
        st.cs_allows <- Lint_ast.pop_stack st.cs_allows
    end
  in
  List.iter visitor#expression bodies

(* Top-level structure walk: defs for every binding (function or value),
   nested modules with a dotted prefix, includes and aliases. *)
let rec collect_structure u pf ~scope items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute attr -> (
          match Lint_ast.allows_of_attribute attr with
          | Some rules -> pf.p_allows <- rules @ pf.p_allows
          | None -> ())
      | Pstr_value (rf, vbs) ->
          List.iter
            (fun vb ->
              match Lint_ast.binding_name vb with
              | Some name ->
                  let vb_allows =
                    Lint_ast.allows_of_attributes vb.pvb_attributes
                  in
                  let path = scope @ [ name ] in
                  let id = pf.p_path ^ "#" ^ String.concat "." path in
                  let params, bodies = Lint_ast.peel_function vb.pvb_expr in
                  let d =
                    {
                      d_id = id;
                      d_file = pf.p_path;
                      d_name = pf.p_module ^ "." ^ String.concat "." path;
                      d_line = line_of vb.pvb_loc;
                      d_rec = (rf = Recursive);
                      d_lambda = false;
                      d_params = params;
                      d_polls = false;
                      d_calls = [];
                      d_loops = [];
                      d_acquires = [];
                      d_blocking = [];
                      d_param_calls = [];
                      d_lets = [];
                      d_ret =
                        List.concat_map Lint_ast.tail_exprs bodies
                        |> List.map texpr_of;
                      d_budget_waived =
                        Lint_ast.allows_hit rule_budget vb_allows
                        || Lint_ast.allows_hit rule_budget pf.p_allows;
                      d_sinks = [];
                    }
                  in
                  add_def u d;
                  collect_def u pf ~defpath:path ~def:d ~locks:[]
                    (Lint_ast.param_defaults vb.pvb_expr @ bodies)
              | None -> ())
            vbs
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure sub -> collect_structure u pf ~scope:(scope @ [ name ]) sub
          | Pmod_constraint ({ pmod_desc = Pmod_structure sub; _ }, _) ->
              collect_structure u pf ~scope:(scope @ [ name ]) sub
          | Pmod_ident { txt; _ } -> (
              match Longident.flatten_exn txt with
              | parts -> pf.p_aliases <- (name, parts) :: pf.p_aliases
              | exception _ -> ())
          | _ -> ())
      | Pstr_include { pincl_mod = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        -> (
          match Longident.flatten_exn txt with
          | parts -> pf.p_includes <- parts :: pf.p_includes
          | exception _ -> ())
      | _ -> ())
    items

(* --- resolution ------------------------------------------------------- *)

(* Resolve a raw module path to a file of the universe: either
   [Wrapper.Module] through a dune library, or a sibling [Module] of
   [from_dir]. *)
let file_of_module_path u ~from_dir parts =
  match parts with
  | w :: m :: _ when Hashtbl.mem u.u_wrappers w -> (
      match Hashtbl.find_opt u.u_wrappers w with
      | Some dir -> Hashtbl.find_opt u.u_by_module (dir, m)
      | None -> None)
  | [ m ] -> Hashtbl.find_opt u.u_by_module (from_dir, m)
  | _ -> None

let rec resolve_in_file u ~depth path rest v =
  if depth > 4 then Unknown
  else
    let id = path ^ "#" ^ String.concat "." (rest @ [ v ]) in
    if Hashtbl.mem u.u_defs id then Local id
    else
      match Hashtbl.find_opt u.u_files path with
      | None -> Unknown
      | Some pf ->
          let via_include =
            List.find_map
              (fun inc ->
                match
                  file_of_module_path u ~from_dir:pf.p_dir inc
                with
                | Some path' -> (
                    match
                      resolve_in_file u ~depth:(depth + 1) path' rest v
                    with
                    | Local _ as r -> Some r
                    | _ -> None)
                | None -> None)
              pf.p_includes
          in
          (match via_include with Some r -> r | None -> Unknown)

(* Resolve one dotted path as written at a call site in [pf] inside the
   def whose dotted path is [defpath]. *)
let resolve u (pf : pfile) ~defpath raw =
  let parts = String.split_on_char '.' raw in
  let rec split_value acc = function
    | [ v ] -> (List.rev acc, v)
    | m :: rest -> split_value (m :: acc) rest
    | [] -> ([], "")
  in
  let ms, v = split_value [] parts in
  if v = "" then Unknown
  else
    match ms with
    | [] ->
        if not (lowercase_head v) then Unknown
        else
          (* innermost enclosing scope first, then file top level *)
          let rec try_prefix prefix =
            let id = pf.p_path ^ "#" ^ String.concat "." (prefix @ [ v ]) in
            if Hashtbl.mem u.u_defs id then Some (Local id)
            else
              match prefix with
              | [] -> None
              | _ -> try_prefix (Lint_ast.pop_stack (List.rev prefix) |> List.rev)
          in
          (match try_prefix defpath with Some r -> r | None -> Unknown)
    | m :: rest -> (
        (* module alias defined in this file? *)
        let ms =
          match List.assoc_opt m pf.p_aliases with
          | Some expansion -> expansion @ rest
          | None -> ms
        in
        match ms with
        | [] -> Unknown
        | m :: rest -> (
            match Hashtbl.find_opt u.u_wrappers m with
            | Some dir -> (
                match rest with
                | [] -> Unknown
                | fm :: rest' -> (
                    match Hashtbl.find_opt u.u_by_module (dir, fm) with
                    | Some path -> (
                        match resolve_in_file u ~depth:0 path rest' v with
                        | Local _ as r -> r
                        | _ -> External raw)
                    | None -> External raw))
            | None -> (
                match Hashtbl.find_opt u.u_by_module (pf.p_dir, m) with
                | Some path -> (
                    match resolve_in_file u ~depth:0 path rest v with
                    | Local _ as r -> r
                    | _ -> Unknown)
                | None -> (
                    (* nested module of the current file *)
                    match resolve_in_file u ~depth:0 pf.p_path ms v with
                    | Local _ as r -> r
                    | _ -> External raw))))

(* --- build ------------------------------------------------------------ *)

let build (files : (string * structure) list) : t =
  let u =
    {
      u_files = Hashtbl.create 64;
      u_by_module = Hashtbl.create 64;
      u_wrappers = Hashtbl.create 16;
      u_defs = Hashtbl.create 512;
      u_order = [];
    }
  in
  let pfiles =
    List.map
      (fun (path, str) ->
        let dir = Filename.dirname path in
        let pf =
          {
            p_path = path;
            p_dir = dir;
            p_module = module_of_path path;
            p_str = str;
            p_includes = [];
            p_aliases = [];
            p_allows = [];
          }
        in
        Hashtbl.replace u.u_files path pf;
        Hashtbl.replace u.u_by_module (dir, pf.p_module) path;
        (match wrapper_of_dir dir with
        | Some w when not (Hashtbl.mem u.u_wrappers w) ->
            Hashtbl.replace u.u_wrappers w dir
        | _ -> ());
        pf)
      files
  in
  (* Pass A: defs, aliases, includes, facts.  (Raw call targets are
     resolved in pass B once every def of every file exists.) *)
  List.iter (fun pf -> collect_structure u pf ~scope:[] pf.p_str) pfiles;
  (* Pass B: resolve raw call paths and taint calls. *)
  Hashtbl.iter
    (fun _ d ->
      match Hashtbl.find_opt u.u_files d.d_file with
      | None -> ()
      | Some pf ->
          (* Unqualified names resolve innermost scope out, starting
             from the def's own dotted path: a call in [handle_load]'s
             body to a nested [go] must find [#handle_load.go] before
             falling back to the file's top level. *)
          let defpath =
            match String.index_opt d.d_id '#' with
            | Some i ->
                String.sub d.d_id (i + 1) (String.length d.d_id - i - 1)
                |> String.split_on_char '.'
            | None -> []
          in
          List.iter
            (fun c -> c.c_target <- resolve u pf ~defpath c.c_raw)
            d.d_calls;
          let resolve_texpr (tx : texpr) =
            tx.t_targets <-
              List.map (fun raw -> resolve u pf ~defpath raw) tx.t_raw_calls
          in
          List.iter (fun (_, tx) -> resolve_texpr tx) d.d_lets;
          List.iter resolve_texpr d.d_ret;
          List.iter (fun k -> resolve_texpr k.k_taint) d.d_sinks)
    u.u_defs;
  { defs = u.u_defs; order = List.rev u.u_order; n_files = List.length files }

(* --- graph dump ------------------------------------------------------- *)

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph xklint {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  List.iter
    (fun id ->
      match find_def t id with
      | None -> ()
      | Some d ->
          let attrs =
            String.concat ""
              [
                (if d.d_polls then ", polls" else "");
                (if d.d_loops <> [] then
                   Printf.sprintf ", loops=%d" (List.length d.d_loops)
                 else "");
                (if d.d_acquires <> [] then ", locks" else "");
              ]
          in
          Buffer.add_string buf
            (Printf.sprintf "  %S [label=%S];\n" d.d_id
               (d.d_name ^ attrs));
          List.iter
            (fun c ->
              match c.c_target with
              | Local id2 ->
                  Buffer.add_string buf
                    (Printf.sprintf "  %S -> %S%s;\n" d.d_id id2
                       (if c.c_locks <> [] then " [color=red]" else ""))
              | External _ | Unknown -> ())
            d.d_calls;
          List.iter
            (fun (_, anon) ->
              Buffer.add_string buf
                (Printf.sprintf "  %S -> %S [style=dashed];\n" d.d_id anon))
            (List.concat_map (fun c -> c.c_lambdas) d.d_calls))
    t.order;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
