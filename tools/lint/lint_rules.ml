(* The syntactic (single-file) invariants, checked over ppxlib's
   parsetree (so the same source parses on every compiler in the CI
   matrix):

   - [rpc-budget]: in the serving layers ([lib/rpc], [lib/exec]) every
     RPC handler - a function binding named [handle*] - must thread a
     [Budget.*]: the request frame carries the caller's remaining
     deadline/ticks and a handler that never touches a budget is one
     that cannot degrade under it.  Framing plumbing that does no query
     work keeps other names ([dispatch], [serve], ...).
   - [bare-lock]: [Mutex.lock]/[unlock]/[try_lock] never appear outside
     [Xk_util.Sync] - critical sections use [Sync.with_lock], which
     releases on raise.  Checked in [lib/], [bin/] and [tools/].
   - [shared-state]: a top-level binding in a domain-crossing library
     ([lib/exec], [lib/index], [lib/resilience]) must not build bare
     mutable state ([ref]/[Hashtbl.create]/[Buffer.create]/
     [Queue.create]); it is either [Atomic.make] or wrapped in
     [Sync.Protected.create].  Creation under a [fun] is per-call state
     and is fine.
   - [typed-error]: no [failwith]/[invalid_arg] (use [Xk_util.Err]), no
     bare [assert false] (use [Err.unreachable] with context), no
     partial stdlib calls ([List.hd]/[List.tl]/[Option.get]) and no
     [Array.unsafe_*] in [lib/], [bin/] and [tools/].
   - [durability-sync]: in the persistence layers ([lib/index],
     [lib/storage]) a function that both writes and renames must have
     an fsync in its subtree - a bare write-then-rename is atomic
     against concurrent readers but not against power loss; route the
     artifact through [Xk_storage.Durable.write_atomically] or fsync
     the file and its directory explicitly.
   - [no-blocking-in-callback]: an [~on_*] lambda handed to a
     [Circuit_breaker], [Health] or [Supervisor] call must not perform
     blocking IO ([Unix.*], channel IO, RPC client calls): those
     callbacks run inline on the request/supervision path that
     triggered them, so a blocking callback stalls the very machinery
     that is trying to shed or heal load.  Checked in [lib/], [bin/]
     and [tools/].

   [budget-loop], [blocking-io-under-lock], [lock-order] and
   [mmap-lifetime] are whole-program rules, checked interprocedurally
   over the cross-module call graph by Lint_callgraph / Lint_dataflow.

   Any finding can be waived in place with [[@xklint.allow <rule>]] on
   an enclosing expression or binding, [[@@@xklint.allow <rule>]] for a
   whole file, or an entry in [xklint.config]. *)

open Ppxlib

let rule_rpc = "rpc-budget"
let rule_lock = "bare-lock"
let rule_state = "shared-state"
let rule_error = "typed-error"
let rule_sync = "durability-sync"
let rule_callback = "no-blocking-in-callback"

type ctx = {
  file : string;
  config : Lint_config.t;
  mutable findings : Lint_finding.t list;
  mutable fn_stack : string list; (* enclosing binding names, innermost first *)
  mutable allow_stack : string list list; (* rules waived by enclosing attrs *)
  mutable file_allows : string list; (* from [@@@xklint.allow ...] *)
  mutable expr_depth : int; (* 0 = structure level *)
  check_rpc : bool; (* handle* bindings must thread a Budget *)
  check_state : bool;
  check_lib : bool; (* bare-lock + typed-error *)
  check_sync : bool; (* write-then-rename must fsync *)
}

let in_dir dir file = Lint_util.contains_substring ~sub:("/" ^ dir ^ "/") ("/" ^ file)

let make_ctx config ~file =
  {
    file;
    config;
    findings = [];
    fn_stack = [];
    allow_stack = [];
    file_allows = [];
    expr_depth = 0;
    check_rpc = in_dir "lib/rpc" file || in_dir "lib/exec" file;
    check_state =
      in_dir "lib/exec" file || in_dir "lib/index" file
      || in_dir "lib/resilience" file;
    check_lib = in_dir "lib" file || in_dir "bin" file || in_dir "tools" file;
    check_sync = in_dir "lib/index" file || in_dir "lib/storage" file;
  }

let waived ctx rule =
  Lint_ast.allows_hit rule ctx.file_allows
  || List.exists (Lint_ast.allows_hit rule) ctx.allow_stack

let report ctx ~loc ~rule ?name msg =
  if not (waived ctx rule) then
    if not (Lint_config.allowed ctx.config ~rule ~file:ctx.file ~name) then
      ctx.findings <-
        Lint_finding.v ~file:ctx.file ~line:loc.loc_start.pos_lnum ~rule msg
        :: ctx.findings

let enclosing_fn ctx =
  match ctx.fn_stack with name :: _ -> name | [] -> "<toplevel>"

(* The durability-sync vocabulary: a rename is the publication point, a
   write is what makes it durability-relevant, and an fsync mention -
   direct or via the [Durable] atomic-write helpers, which fsync
   internally - is what discharges the obligation. *)
let rename_idents = [ "Sys.rename"; "Unix.rename" ]

let write_idents =
  [
    "output_string";
    "output_bytes";
    "output_char";
    "output_byte";
    "Buffer.output_buffer";
    "Printf.fprintf";
  ]

let write_prefixes = [ "Out_channel."; "Unix.write" ]
let sync_markers = [ "fsync"; "write_atomically"; "write_string_atomically" ]
let mentions_rename = Lint_ast.mentions_path (fun p -> List.mem p rename_idents)

let mentions_write =
  Lint_ast.mentions_path (fun p ->
      List.mem p write_idents
      || List.exists (fun pre -> String.starts_with ~prefix:pre p) write_prefixes)

let mentions_sync =
  Lint_ast.mentions_path (fun p ->
      List.exists (fun m -> Lint_util.contains_substring ~sub:m p) sync_markers)

(* Mutable-state scan for one top-level right-hand side.  Stops at
   lambdas (per-call state) and at sanctioned wrappers. *)
let bare_state_ctors = [ "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create" ]

let sanctioned_wrappers =
  [
    "Atomic.make";
    "Sync.Protected.create";
    "Xk_util.Sync.Protected.create";
    "Protected.create";
  ]

let scan_toplevel_state ~on_hit =
  object
    inherit Ast_traverse.iter as super

    method! expression e =
      let allows = Lint_ast.allows_of_attributes e.pexp_attributes in
      if Lint_ast.allows_hit rule_state allows then ()
      else
        match e.pexp_desc with
        | Pexp_function _ -> () (* per-call state *)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when List.mem
                 (Lint_ast.strip_stdlib (Lint_ast.ident_path txt))
                 sanctioned_wrappers ->
            ()
        | Pexp_ident { txt; _ }
          when List.mem
                 (Lint_ast.strip_stdlib (Lint_ast.ident_path txt))
                 bare_state_ctors ->
            on_hit e.pexp_loc (Lint_ast.strip_stdlib (Lint_ast.ident_path txt))
        | _ -> super#expression e
  end

let locked_idents = [ "Mutex.lock"; "Mutex.unlock"; "Mutex.try_lock" ]

(* Modules whose [~on_*] callbacks run inline on the serving or
   supervision path; blocking inside one stalls the resilience
   machinery itself.  Matching is by path component, so
   [Xk_resilience.Circuit_breaker.create], [Circuit_breaker.create] and
   [Xk_exec.Supervisor.create] all qualify. *)
let callback_owners = [ "Circuit_breaker"; "Health"; "Supervisor" ]

let callback_owner path =
  List.exists
    (fun part -> List.mem part callback_owners)
    (String.split_on_char '.' path)

let mentions_blocking = Lint_ast.mentions_path Lint_callgraph.is_blocking

let partial_msg = function
  | ("List.hd" | "List.tl" | "Option.get") as p ->
      Some (Printf.sprintf "partial call '%s'; match on the shape instead" p)
  | p when String.starts_with ~prefix:"Array.unsafe_" p ->
      Some (Printf.sprintf "unchecked access '%s'; use the safe variant" p)
  | "failwith" ->
      Some
        "'failwith' raises untyped Failure; raise a typed exception \
         (Xk_util.Err or a module-specific one)"
  | "invalid_arg" ->
      Some "'invalid_arg' bypasses Xk_util.Err; use Err.invalid/invalidf"
  | _ -> None

class linter ctx =
  object (self)
    inherit Ast_traverse.iter as super

    method private check_toplevel_state vbs =
      if ctx.check_state && ctx.expr_depth = 0 then
        List.iter
          (fun vb ->
            let name = Lint_ast.binding_name vb in
            let allows = Lint_ast.allows_of_attributes vb.pvb_attributes in
            if not (Lint_ast.allows_hit rule_state allows) then
              (scan_toplevel_state ~on_hit:(fun loc ctor ->
                   report ctx ~loc ~rule:rule_state ?name
                     (Printf.sprintf
                        "top-level mutable state '%s' built with '%s' in a \
                         domain-crossing library; use Atomic.t or \
                         Xk_util.Sync.Protected"
                        (Option.value name ~default:"_")
                        ctor)))
                #expression vb.pvb_expr)
          vbs

    method! structure_item si =
      (match si.pstr_desc with
      | Pstr_attribute attr -> (
          match Lint_ast.allows_of_attribute attr with
          | Some rules -> ctx.file_allows <- rules @ ctx.file_allows
          | None -> ())
      | Pstr_value (_, vbs) -> self#check_toplevel_state vbs
      | _ -> ());
      super#structure_item si

    method! value_binding vb =
      (* Only function bindings anchor [fn_stack]: a [while] inside
         [let hits = ... while ... done ...] reports the enclosing
         function, not 'hits'. *)
      let fn_name =
        match vb.pvb_expr.pexp_desc with
        | Pexp_function _ | Pexp_newtype _ -> Lint_ast.binding_name vb
        | _ -> None
      in
      let allows = Lint_ast.allows_of_attributes vb.pvb_attributes in
      (if ctx.check_rpc then
         match fn_name with
         | Some n
           when String.starts_with ~prefix:"handle" n
                && (not (Lint_ast.allows_hit rule_rpc allows))
                && not (Lint_ast.mentions_budget vb.pvb_expr) ->
             report ctx ~loc:vb.pvb_loc ~rule:rule_rpc ~name:n
               (Printf.sprintf
                  "RPC handler '%s' never threads a Budget; rebuild one from \
                   the request's deadline/ticks and run the work under it"
                  n)
         | _ -> ());
      (if ctx.check_sync then
         match fn_name with
         | Some n
           when (not (Lint_ast.allows_hit rule_sync allows))
                && mentions_rename vb.pvb_expr
                && mentions_write vb.pvb_expr
                && not (mentions_sync vb.pvb_expr) ->
             report ctx ~loc:vb.pvb_loc ~rule:rule_sync ~name:n
               (Printf.sprintf
                  "'%s' writes then renames with no fsync in sight; after a \
                   power cut the renamed file may hold garbage - route it \
                   through Xk_storage.Durable.write_atomically or fsync the \
                   file and its directory"
                  n)
         | _ -> ());
      ctx.allow_stack <- allows :: ctx.allow_stack;
      (match fn_name with
      | Some n -> ctx.fn_stack <- n :: ctx.fn_stack
      | None -> ());
      super#value_binding vb;
      (match fn_name with
      | Some _ -> ctx.fn_stack <- Lint_ast.pop_stack ctx.fn_stack
      | None -> ());
      ctx.allow_stack <- Lint_ast.pop_stack ctx.allow_stack

    method! expression e =
      let allows = Lint_ast.allows_of_attributes e.pexp_attributes in
      ctx.allow_stack <- allows :: ctx.allow_stack;
      ctx.expr_depth <- ctx.expr_depth + 1;
      (match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when ctx.check_lib
             && callback_owner (Lint_ast.strip_stdlib (Lint_ast.ident_path txt))
        ->
          List.iter
            (fun (label, (arg : expression)) ->
              match label with
              | Labelled l
                when String.starts_with ~prefix:"on_" l
                     && Lint_ast.is_lambda arg
                     && (not
                           (Lint_ast.allows_hit rule_callback
                              (Lint_ast.allows_of_attributes
                                 arg.pexp_attributes)))
                     && mentions_blocking arg ->
                  report ctx ~loc:arg.pexp_loc ~rule:rule_callback ~name:l
                    (Printf.sprintf
                       "blocking IO inside the '~%s' callback of '%s'; the \
                        callback runs inline on the serving/supervision path \
                        - record the event and do the IO outside"
                       l
                       (Lint_ast.strip_stdlib (Lint_ast.ident_path txt)))
              | _ -> ())
            args
      | Pexp_ident { txt; _ } when ctx.check_lib -> (
          let path = Lint_ast.strip_stdlib (Lint_ast.ident_path txt) in
          if List.mem path locked_idents then
            report ctx ~loc:e.pexp_loc ~rule:rule_lock ~name:path
              (Printf.sprintf
                 "'%s' outside Xk_util.Sync; wrap the critical section in \
                  Sync.with_lock so a raise cannot leak the lock (in '%s')"
                 path (enclosing_fn ctx))
          else
            match partial_msg path with
            | Some msg ->
                report ctx ~loc:e.pexp_loc ~rule:rule_error ~name:path msg
            | None -> ())
      | Pexp_assert
          { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
        when ctx.check_lib ->
          report ctx ~loc:e.pexp_loc ~rule:rule_error ~name:"assert-false"
            "bare 'assert false'; use Xk_util.Err.unreachable with a \
             \"Module.fn: why\" message"
      | _ -> ());
      super#expression e;
      ctx.expr_depth <- ctx.expr_depth - 1;
      ctx.allow_stack <- Lint_ast.pop_stack ctx.allow_stack
  end

let run config ~file str =
  let ctx = make_ctx config ~file in
  (new linter ctx)#structure str;
  List.sort Lint_finding.compare ctx.findings
