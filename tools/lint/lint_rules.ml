(* The six invariants, checked over ppxlib's parsetree (so the same
   source parses on every compiler in the CI matrix):

   - [budget-loop]: in the algorithm layers ([lib/core], [lib/baselines])
     every [while] loop and every recursive binding must mention a
     [Budget.*] identifier somewhere in its own subtree - the
     deadline/cancellation token is polled from inside the loop, not
     around it.  Bounded pure helpers go in the allowlist.
   - [rpc-budget]: in the serving layers ([lib/rpc], [lib/exec]) every
     RPC handler - a function binding named [handle*] - must thread a
     [Budget.*]: the request frame carries the caller's remaining
     deadline/ticks and a handler that never touches a budget is one
     that cannot degrade under it.  Framing plumbing that does no query
     work keeps other names ([dispatch], [serve], ...).
   - [bare-lock]: [Mutex.lock]/[unlock]/[try_lock] never appear outside
     [Xk_util.Sync] - critical sections use [Sync.with_lock], which
     releases on raise.  Checked in [lib/], [bin/] and [tools/].
   - [shared-state]: a top-level binding in a domain-crossing library
     ([lib/exec], [lib/index], [lib/resilience]) must not build bare
     mutable state ([ref]/[Hashtbl.create]/[Buffer.create]/
     [Queue.create]); it is either [Atomic.make] or wrapped in
     [Sync.Protected.create].  Creation under a [fun] is per-call state
     and is fine.
   - [typed-error]: no [failwith]/[invalid_arg] (use [Xk_util.Err]), no
     bare [assert false] (use [Err.unreachable] with context), no
     partial stdlib calls ([List.hd]/[List.tl]/[Option.get]) and no
     [Array.unsafe_*] in [lib/], [bin/] and [tools/].
   - [blocking-io-under-lock]: the body handed to [Sync.with_lock] or
     [Sync.Protected.with_] must not call [Unix.*]/[In_channel.*]/
     [Out_channel.*] - a sleep, read or write under the lock stalls
     every domain contending for it.  Decide under the lock, perform
     the IO outside (the pattern Chaos/Fault_injection follow).
   - [durability-sync]: in the persistence layers ([lib/index],
     [lib/storage]) a function that both writes and renames must have
     an fsync in its subtree - a bare write-then-rename is atomic
     against concurrent readers but not against power loss; route the
     artifact through [Xk_storage.Durable.write_atomically] or fsync
     the file and its directory explicitly.
   - [mmap-lifetime]: in the zero-copy layers ([lib/index],
     [lib/storage]) no [Mmap.*] value or accessor result may flow into
     a long-lived store - an argument subtree of [Shard_cache.
     find_or_add], [Hashtbl.add]/[replace], [Atomic.set] or [:=] that
     mentions [Mmap] is caching mapped bytes (or the handle) past the
     owning segment's close; decode into plain OCaml values first.

   Any finding can be waived in place with [[@xklint.allow <rule>]] on
   an enclosing expression or binding, [[@@@xklint.allow <rule>]] for a
   whole file, or an entry in [xklint.config]. *)

open Ppxlib

let rule_budget = "budget-loop"
let rule_rpc = "rpc-budget"
let rule_lock = "bare-lock"
let rule_state = "shared-state"
let rule_error = "typed-error"
let rule_lock_io = "blocking-io-under-lock"
let rule_sync = "durability-sync"
let rule_mmap = "mmap-lifetime"

type ctx = {
  file : string;
  config : Lint_config.t;
  mutable findings : Lint_finding.t list;
  mutable fn_stack : string list; (* enclosing binding names, innermost first *)
  mutable allow_stack : string list list; (* rules waived by enclosing attrs *)
  mutable file_allows : string list; (* from [@@@xklint.allow ...] *)
  mutable expr_depth : int; (* 0 = structure level *)
  check_budget : bool;
  check_rpc : bool; (* handle* bindings must thread a Budget *)
  check_state : bool;
  check_lib : bool; (* bare-lock + typed-error *)
  check_sync : bool; (* write-then-rename must fsync *)
  check_mmap : bool; (* mapped bytes must not outlive their segment *)
}

let in_dir dir file = Lint_util.contains_substring ~sub:("/" ^ dir ^ "/") ("/" ^ file)

let make_ctx config ~file =
  {
    file;
    config;
    findings = [];
    fn_stack = [];
    allow_stack = [];
    file_allows = [];
    expr_depth = 0;
    check_budget = in_dir "lib/core" file || in_dir "lib/baselines" file;
    check_rpc = in_dir "lib/rpc" file || in_dir "lib/exec" file;
    check_state =
      in_dir "lib/exec" file || in_dir "lib/index" file
      || in_dir "lib/resilience" file;
    check_lib = in_dir "lib" file || in_dir "bin" file || in_dir "tools" file;
    check_sync = in_dir "lib/index" file || in_dir "lib/storage" file;
    check_mmap = in_dir "lib/index" file || in_dir "lib/storage" file;
  }

let ident_path lid =
  match Longident.flatten_exn lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

let strip_stdlib path =
  if String.starts_with ~prefix:"Stdlib." path then
    String.sub path 7 (String.length path - 7)
  else path

(* [@xklint.allow <payload>]: the payload names the waived rules - bare
   or string literals, a tuple for several, empty for all.  Kebab-case
   rule ids parse as subtractions ([bare-lock] is [bare - lock]), so
   that shape is folded back into a name. *)
let rec rule_names_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident s; _ } -> [ s ]
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_tuple es -> List.concat_map rule_names_of_expr es
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "-"; _ }; _ },
        [ (Nolabel, a); (Nolabel, b) ] ) -> (
      match (rule_names_of_expr a, rule_names_of_expr b) with
      | [ x ], [ y ] -> [ x ^ "-" ^ y ]
      | _ -> [])
  | _ -> []

let allows_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "xklint.allow" then None
  else
    match attr.attr_payload with
    | PStr [] -> Some [ "*" ]
    | PStr items ->
        Some
          (List.concat_map
             (fun item ->
               match item.pstr_desc with
               | Pstr_eval (e, _) -> rule_names_of_expr e
               | _ -> [])
             items)
    | _ -> Some [ "*" ]

let allows_of_attributes attrs = List.filter_map allows_of_attribute attrs |> List.concat

let waived ctx rule =
  let hit rules = List.mem rule rules || List.mem "*" rules in
  hit ctx.file_allows || List.exists hit ctx.allow_stack

let report ctx ~loc ~rule ?name msg =
  if not (waived ctx rule) then
    if not (Lint_config.allowed ctx.config ~rule ~file:ctx.file ~name) then
      ctx.findings <-
        Lint_finding.v ~file:ctx.file ~line:loc.loc_start.pos_lnum ~rule msg
        :: ctx.findings

let enclosing_fn ctx =
  match ctx.fn_stack with name :: _ -> name | [] -> "<toplevel>"

(* Does a subtree mention an identifier whose dotted path satisfies
   [pred]?  The scan short-circuits on the first hit. *)
let mentions_path pred =
  let found = ref false in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            if pred (strip_stdlib (ident_path txt)) then found := true
        | _ -> ());
        if not !found then super#expression e
    end
  in
  fun e ->
    found := false;
    scan#expression e;
    !found

(* Does a subtree mention any [Budget] identifier ([Budget.check],
   [Xk_resilience.Budget.alive], ...)? *)
let mentions_budget =
  mentions_path (fun path ->
      List.exists
        (fun part -> part = "Budget")
        (String.split_on_char '.' path))

(* The durability-sync vocabulary: a rename is the publication point, a
   write is what makes it durability-relevant, and an fsync mention -
   direct or via the [Durable] atomic-write helpers, which fsync
   internally - is what discharges the obligation. *)
let rename_idents = [ "Sys.rename"; "Unix.rename" ]

let write_idents =
  [
    "output_string";
    "output_bytes";
    "output_char";
    "output_byte";
    "Buffer.output_buffer";
    "Printf.fprintf";
  ]

let write_prefixes = [ "Out_channel."; "Unix.write" ]
let sync_markers = [ "fsync"; "write_atomically"; "write_string_atomically" ]
let mentions_rename = mentions_path (fun p -> List.mem p rename_idents)

let mentions_write =
  mentions_path (fun p ->
      List.mem p write_idents
      || List.exists (fun pre -> String.starts_with ~prefix:pre p) write_prefixes)

let mentions_sync =
  mentions_path (fun p ->
      List.exists (fun m -> Lint_util.contains_substring ~sub:m p) sync_markers)

(* The mmap-lifetime vocabulary: the sinks are the long-lived stores a
   mapped byte range could escape into, and a mention of any [Mmap]
   module component inside a sink's argument subtree is the escape.
   (The typed accessors that {e copy} out of the map - [sub_string],
   [u32] - return plain values, but an expression feeding a cache
   straight from the handle is still holding the segment's lifetime
   hostage; decode into a named plain value first.) *)
let mmap_sinks =
  [
    "Shard_cache.find_or_add";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Atomic.set";
    ":=";
  ]

let mentions_mmap =
  mentions_path (fun path ->
      List.exists (fun part -> part = "Mmap") (String.split_on_char '.' path))

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Mutable-state scan for one top-level right-hand side.  Stops at
   lambdas (per-call state) and at sanctioned wrappers. *)
let bare_state_ctors = [ "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create" ]

let sanctioned_wrappers =
  [
    "Atomic.make";
    "Sync.Protected.create";
    "Xk_util.Sync.Protected.create";
    "Protected.create";
  ]

let scan_toplevel_state ~on_hit =
  object
    inherit Ast_traverse.iter as super

    method! expression e =
      let allows = allows_of_attributes e.pexp_attributes in
      if List.mem rule_state allows || List.mem "*" allows then ()
      else
        match e.pexp_desc with
        | Pexp_function _ -> () (* per-call state *)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when List.mem (strip_stdlib (ident_path txt)) sanctioned_wrappers ->
            ()
        | Pexp_ident { txt; _ }
          when List.mem (strip_stdlib (ident_path txt)) bare_state_ctors ->
            on_hit e.pexp_loc (strip_stdlib (ident_path txt))
        | _ -> super#expression e
  end

let locked_idents = [ "Mutex.lock"; "Mutex.unlock"; "Mutex.try_lock" ]

(* Application heads whose function argument runs with a lock held. *)
let lock_wrappers =
  [
    "Sync.with_lock";
    "Xk_util.Sync.with_lock";
    "with_lock";
    "Sync.Protected.with_";
    "Xk_util.Sync.Protected.with_";
    "Protected.with_";
  ]

let blocking_prefixes = [ "Unix."; "In_channel."; "Out_channel." ]

(* Blocking-call scan over a critical-section body.  A nested lock
   wrapper is skipped here: the outer traversal visits it on its own
   and opens a fresh scan, so each call site reports exactly once. *)
let scan_blocking_io ~on_hit =
  object
    inherit Ast_traverse.iter as super

    method! expression e =
      let allows = allows_of_attributes e.pexp_attributes in
      if List.mem rule_lock_io allows || List.mem "*" allows then ()
      else
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
          when List.mem (strip_stdlib (ident_path txt)) lock_wrappers ->
            ()
        | Pexp_ident { txt; _ } ->
            let path = strip_stdlib (ident_path txt) in
            if
              List.exists
                (fun p -> String.starts_with ~prefix:p path)
                blocking_prefixes
            then on_hit e.pexp_loc path
        | _ -> super#expression e
  end

(* Total stack pop: the push/pop pairs below are balanced by
   construction, but [tools/] is in typed-error scope now, so the lint
   must satisfy its own no-[List.tl] rule. *)
let pop_stack = function [] -> [] | _ :: tl -> tl

let partial_msg = function
  | ("List.hd" | "List.tl" | "Option.get") as p ->
      Some (Printf.sprintf "partial call '%s'; match on the shape instead" p)
  | p when String.starts_with ~prefix:"Array.unsafe_" p ->
      Some (Printf.sprintf "unchecked access '%s'; use the safe variant" p)
  | "failwith" ->
      Some
        "'failwith' raises untyped Failure; raise a typed exception \
         (Xk_util.Err or a module-specific one)"
  | "invalid_arg" ->
      Some "'invalid_arg' bypasses Xk_util.Err; use Err.invalid/invalidf"
  | _ -> None

class linter ctx =
  object (self)
    inherit Ast_traverse.iter as super

    method private check_rec_bindings vbs =
      if ctx.check_budget then
        List.iter
          (fun vb ->
            if not (mentions_budget vb.pvb_expr) then
              let name = binding_name vb in
              let shown = Option.value name ~default:"<pattern>" in
              let waived_by_attr =
                let allows = allows_of_attributes vb.pvb_attributes in
                List.mem rule_budget allows || List.mem "*" allows
              in
              if not waived_by_attr then
                report ctx ~loc:vb.pvb_loc ~rule:rule_budget ?name
                  (Printf.sprintf
                     "recursive '%s' never polls Budget.check/alive; pass and \
                      poll the request budget (or allowlist a pure helper)"
                     shown))
          vbs

    method private check_toplevel_state vbs =
      if ctx.check_state && ctx.expr_depth = 0 then
        List.iter
          (fun vb ->
            let name = binding_name vb in
            let allows = allows_of_attributes vb.pvb_attributes in
            if not (List.mem rule_state allows || List.mem "*" allows) then
              (scan_toplevel_state ~on_hit:(fun loc ctor ->
                   report ctx ~loc ~rule:rule_state ?name
                     (Printf.sprintf
                        "top-level mutable state '%s' built with '%s' in a \
                         domain-crossing library; use Atomic.t or \
                         Xk_util.Sync.Protected"
                        (Option.value name ~default:"_")
                        ctor)))
                #expression vb.pvb_expr)
          vbs

    method! structure_item si =
      (match si.pstr_desc with
      | Pstr_attribute attr -> (
          match allows_of_attribute attr with
          | Some rules -> ctx.file_allows <- rules @ ctx.file_allows
          | None -> ())
      | Pstr_value (Recursive, vbs) ->
          self#check_rec_bindings vbs;
          self#check_toplevel_state vbs
      | Pstr_value (Nonrecursive, vbs) -> self#check_toplevel_state vbs
      | _ -> ());
      super#structure_item si

    method! value_binding vb =
      (* Only function bindings anchor [fn_stack]: a [while] inside
         [let hits = ... while ... done ...] reports the enclosing
         function, not 'hits'. *)
      let fn_name =
        match vb.pvb_expr.pexp_desc with
        | Pexp_function _ | Pexp_newtype _ -> binding_name vb
        | _ -> None
      in
      let allows = allows_of_attributes vb.pvb_attributes in
      (if ctx.check_rpc then
         match fn_name with
         | Some n
           when String.starts_with ~prefix:"handle" n
                && (not (List.mem rule_rpc allows || List.mem "*" allows))
                && not (mentions_budget vb.pvb_expr) ->
             report ctx ~loc:vb.pvb_loc ~rule:rule_rpc ~name:n
               (Printf.sprintf
                  "RPC handler '%s' never threads a Budget; rebuild one from \
                   the request's deadline/ticks and run the work under it"
                  n)
         | _ -> ());
      (if ctx.check_sync then
         match fn_name with
         | Some n
           when (not (List.mem rule_sync allows || List.mem "*" allows))
                && mentions_rename vb.pvb_expr
                && mentions_write vb.pvb_expr
                && not (mentions_sync vb.pvb_expr) ->
             report ctx ~loc:vb.pvb_loc ~rule:rule_sync ~name:n
               (Printf.sprintf
                  "'%s' writes then renames with no fsync in sight; after a \
                   power cut the renamed file may hold garbage - route it \
                   through Xk_storage.Durable.write_atomically or fsync the \
                   file and its directory"
                  n)
         | _ -> ());
      ctx.allow_stack <- allows :: ctx.allow_stack;
      (match fn_name with
      | Some n -> ctx.fn_stack <- n :: ctx.fn_stack
      | None -> ());
      super#value_binding vb;
      (match fn_name with
      | Some _ -> ctx.fn_stack <- pop_stack ctx.fn_stack
      | None -> ());
      ctx.allow_stack <- pop_stack ctx.allow_stack

    method! expression e =
      let allows = allows_of_attributes e.pexp_attributes in
      ctx.allow_stack <- allows :: ctx.allow_stack;
      ctx.expr_depth <- ctx.expr_depth + 1;
      (match e.pexp_desc with
      | Pexp_ident { txt; _ } when ctx.check_lib -> (
          let path = strip_stdlib (ident_path txt) in
          if List.mem path locked_idents then
            report ctx ~loc:e.pexp_loc ~rule:rule_lock ~name:path
              (Printf.sprintf
                 "'%s' outside Xk_util.Sync; wrap the critical section in \
                  Sync.with_lock so a raise cannot leak the lock (in '%s')"
                 path (enclosing_fn ctx))
          else
            match partial_msg path with
            | Some msg ->
                report ctx ~loc:e.pexp_loc ~rule:rule_error ~name:path msg
            | None -> ())
      | Pexp_assert
          { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
        when ctx.check_lib ->
          report ctx ~loc:e.pexp_loc ~rule:rule_error ~name:"assert-false"
            "bare 'assert false'; use Xk_util.Err.unreachable with a \
             \"Module.fn: why\" message"
      | Pexp_while _ when ctx.check_budget ->
          if not (mentions_budget e) then
            report ctx ~loc:e.pexp_loc ~rule:rule_budget
              ~name:(enclosing_fn ctx)
              (Printf.sprintf
                 "while loop in '%s' never polls Budget.check/alive; poll the \
                  request budget each iteration (or allowlist a pure helper)"
                 (enclosing_fn ctx))
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when ctx.check_lib
             && List.mem (strip_stdlib (ident_path txt)) lock_wrappers ->
          let wrapper = strip_stdlib (ident_path txt) in
          let fn = enclosing_fn ctx in
          List.iter
            (fun ((_, arg) : arg_label * expression) ->
              (scan_blocking_io ~on_hit:(fun loc path ->
                   report ctx ~loc ~rule:rule_lock_io ~name:path
                     (Printf.sprintf
                        "blocking call '%s' inside a '%s' critical section \
                         (in '%s'); decide under the lock, perform the IO \
                         outside it"
                        path wrapper fn)))
                #expression arg)
            args
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when ctx.check_mmap
             && List.mem (strip_stdlib (ident_path txt)) mmap_sinks ->
          let sink = strip_stdlib (ident_path txt) in
          List.iter
            (fun ((_, arg) : arg_label * expression) ->
              if mentions_mmap arg then
                report ctx ~loc:arg.pexp_loc ~rule:rule_mmap ~name:sink
                  (Printf.sprintf
                     "Mmap value flows into long-lived store '%s' (in '%s'); \
                      mapped bytes die with their segment handle - decode \
                      into plain OCaml values before caching"
                     sink (enclosing_fn ctx)))
            args
      | Pexp_let (Recursive, vbs, _) -> self#check_rec_bindings vbs
      | _ -> ());
      super#expression e;
      ctx.expr_depth <- ctx.expr_depth - 1;
      ctx.allow_stack <- pop_stack ctx.allow_stack
  end

let run config ~file str =
  let ctx = make_ctx config ~file in
  (new linter ctx)#structure str;
  List.sort Lint_finding.compare ctx.findings
