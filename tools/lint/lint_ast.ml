(* Parsetree helpers shared by the syntactic rules (Lint_rules) and the
   whole-program passes (Lint_callgraph / Lint_dataflow): dotted-path
   flattening, [@xklint.allow] payload parsing, subtree scans. *)

open Ppxlib

let ident_path lid =
  match Longident.flatten_exn lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

let strip_stdlib path =
  if String.starts_with ~prefix:"Stdlib." path then
    String.sub path 7 (String.length path - 7)
  else path

(* [@xklint.allow <payload>]: the payload names the waived rules - bare
   or string literals, a tuple for several, empty for all.  Kebab-case
   rule ids parse as subtractions ([bare-lock] is [bare - lock]), so
   that shape is folded back into a name. *)
let rec rule_names_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident s; _ } -> [ s ]
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_tuple es -> List.concat_map rule_names_of_expr es
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "-"; _ }; _ },
        [ (Nolabel, a); (Nolabel, b) ] ) -> (
      match (rule_names_of_expr a, rule_names_of_expr b) with
      | [ x ], [ y ] -> [ x ^ "-" ^ y ]
      | _ -> [])
  | _ -> []

let allows_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "xklint.allow" then None
  else
    match attr.attr_payload with
    | PStr [] -> Some [ "*" ]
    | PStr items ->
        Some
          (List.concat_map
             (fun item ->
               match item.pstr_desc with
               | Pstr_eval (e, _) -> rule_names_of_expr e
               | _ -> [])
             items)
    | _ -> Some [ "*" ]

let allows_of_attributes attrs =
  List.filter_map allows_of_attribute attrs |> List.concat

let allows_hit rule rules = List.mem rule rules || List.mem "*" rules

(* Does a subtree mention an identifier whose dotted path satisfies
   [pred]?  The scan short-circuits on the first hit. *)
let mentions_path pred =
  let found = ref false in
  let scan =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
            if pred (strip_stdlib (ident_path txt)) then found := true
        | _ -> ());
        if not !found then super#expression e
    end
  in
  fun e ->
    found := false;
    scan#expression e;
    !found

(* Does a subtree mention any [Budget] identifier ([Budget.check],
   [Xk_resilience.Budget.alive], ...)? *)
let mentions_budget =
  mentions_path (fun path ->
      List.exists (fun part -> part = "Budget") (String.split_on_char '.' path))

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Total stack pop: push/pop pairs in the traversals are balanced by
   construction, but [tools/] is in typed-error scope, so the lint must
   satisfy its own no-[List.tl] rule. *)
let pop_stack = function [] -> [] | _ :: tl -> tl

(* A short, stable rendering of an expression, used as the textual
   identity of a lock in the lock-order analysis ([t.lock], [state],
   [pool.lock]).  Newlines collapse so keys stay one-line. *)
let expr_key e =
  let s =
    match Pprintast.string_of_expression e with
    | s -> s
    | exception _ -> "<expr>"
  in
  let s =
    String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c) s
  in
  if String.length s > 48 then String.sub s 0 48 ^ "..." else s

(* Is the function expression a syntactic lambda (as opposed to a named
   function passed by value)? *)
let is_lambda e =
  match e.pexp_desc with Pexp_function _ -> true | _ -> false

(* Peel [fun p1 ... pn ->] / [function] / [(fun ... : t) ->] layers off a
   binding's right-hand side: the parameter names (with their labels)
   and the body expressions (one per [function] case). *)
let rec peel_function e =
  match e.pexp_desc with
  | Pexp_function (params, _, body) ->
      let names =
        List.filter_map
          (function
            | { pparam_desc = Pparam_val (lbl, _, pat); _ } -> (
                let label =
                  match lbl with
                  | Nolabel -> ""
                  | Labelled l | Optional l -> l
                in
                match pat.ppat_desc with
                | Ppat_var { txt; _ } -> Some (label, txt)
                | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _)
                  ->
                    Some (label, txt)
                | _ -> Some (label, "_"))
            | _ -> None)
          params
      in
      (match body with
      | Pfunction_body b ->
          let inner, bodies = peel_function b in
          (names @ inner, bodies)
      | Pfunction_cases (cases, _, _) ->
          (names, List.map (fun c -> c.pc_rhs) cases))
  | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> peel_function b
  | _ -> ([], [ e ])

(* Optional-argument default expressions ([?(budget = Budget.unlimited)]):
   evaluated on every call, so they belong to the body for fact
   collection (a [Budget] mention there is a real poll site) but not to
   the return positions. *)
let rec param_defaults e =
  match e.pexp_desc with
  | Pexp_function (params, _, body) ->
      let own =
        List.filter_map
          (function
            | { pparam_desc = Pparam_val (_, Some default, _); _ } ->
                Some default
            | _ -> None)
          params
      in
      own
      @ (match body with
        | Pfunction_body b -> param_defaults b
        | Pfunction_cases (_, _, _) -> [])
  | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> param_defaults b
  | _ -> []

let is_function_binding vb =
  let rec fn e =
    match e.pexp_desc with
    | Pexp_function _ -> true
    | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> fn b
    | _ -> false
  in
  fn vb.pvb_expr

(* Tail (result) positions of a function body: where a returned value is
   constructed.  Used by the mmap escape analysis to decide whether a
   function hands out Mmap-backed values. *)
let rec tail_exprs e =
  match e.pexp_desc with
  | Pexp_let (_, _, cont) -> tail_exprs cont
  | Pexp_sequence (_, b) -> tail_exprs b
  | Pexp_ifthenelse (_, t, f) -> (
      tail_exprs t @ match f with Some f -> tail_exprs f | None -> [])
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.concat_map (fun c -> tail_exprs c.pc_rhs) cases
  | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> tail_exprs b
  | Pexp_open (_, b) | Pexp_letmodule (_, _, b) | Pexp_letexception (_, b) ->
      tail_exprs b
  | _ -> [ e ]
